//! The work-stealing parallel engine: FX10 programs on real threads.
//!
//! The shape follows the MPL scheduler signature (`push`/`pop`/`steal`,
//! `finish` as a scoped join) and the PR 2 crew patterns:
//!
//! * **`async`** pushes a [`Task`] — the body statement, a fresh
//!   activity id and forked clock, and the enclosing [`Scope`] — onto
//!   the spawning worker's deque (LIFO for locality). Idle workers pop
//!   their own deque from the back, drain the injector, then steal from
//!   the *front* of a seeded-random victim — `--schedule-seed` perturbs
//!   victim order, giving cheap schedule diversity for the differential
//!   oracles.
//! * **`finish`** is a countdown latch: a [`Scope`] counts pending
//!   transitively-spawned tasks and accumulates their final vector
//!   clocks. The activity executing the `finish` runs the body inline,
//!   then waits *helping* — running other tasks while the latch is up —
//!   so a crew of N workers never deadlocks on nested scopes.
//! * **Granularity** — `grain > 0` inlines any `async` whose body has
//!   at most `grain` instructions into the spawning activity (still a
//!   fresh activity id and fork for the detector, so race detection is
//!   unaffected).
//! * **Panic isolation** — each task runs under `catch_unwind`; a latch
//!   guard decrements the scope's counter during unwind, so a panicking
//!   async can never leave a `finish` waiting forever. The first panic
//!   stops the crew and surfaces as [`Fx10Error::WorkerPanicked`]
//!   (exit 4), exactly like the explorer's contract.
//!
//! The shared array is a `Vec<AtomicI64>` with relaxed ordering — FX10
//! races are *detected*, not prevented, and individual cell accesses
//! must still be tear-free. Steps count executed instructions in a
//! shared counter (same accounting as the elision engine, so race-free
//! programs report byte-identical step totals); the stop flag, cancel
//! token, deadline and step caps are polled on a stride.

use crate::detect::{Detector, VClock};
use crate::RunReport;
use fx10_robust::{panic_message, Budget, CancelToken, Exhaustion, FaultPlan, Fx10Error};
use fx10_semantics::ArrayState;
use fx10_syntax::{Expr, Label, Program, Stmt};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration for one parallel run.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Seed for the stealing order — different seeds give different
    /// schedules, identical final states for race-free programs.
    pub seed: u64,
    /// Inline `async` bodies of at most this many instructions
    /// (0 disables granularity control: every async is a task).
    pub grain: usize,
    /// Cap on executed instructions.
    pub max_steps: u64,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            jobs: 1,
            seed: 0,
            grain: 0,
            max_steps: u64::MAX,
        }
    }
}

/// One spawned activity awaiting execution.
struct Task<'a> {
    stmt: &'a Stmt,
    scope: Arc<Scope>,
    tid: u32,
    clock: VClock,
    is_root: bool,
}

/// A `finish` scope: the countdown latch plus the clock accumulator the
/// waiter joins when the latch reaches zero.
struct Scope {
    pending: AtomicUsize,
    acc: Mutex<VClock>,
}

impl Scope {
    fn new() -> Scope {
        Scope {
            pending: AtomicUsize::new(0),
            acc: Mutex::new(VClock::new()),
        }
    }
}

/// Releases a scope's latch exactly once — on the normal path *after*
/// the clock has been folded into the accumulator, or during unwind if
/// the task panicked (without the fold: the crew is stopping anyway,
/// but no `finish` is left waiting).
struct Latch<'s> {
    scope: &'s Scope,
    armed: bool,
}

impl Latch<'_> {
    fn release(mut self) {
        self.fire();
    }

    fn fire(&mut self) {
        if self.armed {
            self.armed = false;
            self.scope.pending.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

impl Drop for Latch<'_> {
    fn drop(&mut self) {
        self.fire();
    }
}

/// Per-worker mutable state threaded through the call stack so helping
/// at a `finish` wait shares the same counters as the top-level loop.
struct Wctx {
    w: usize,
    rng: Xorshift,
    processed: u64,
}

struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Xorshift {
        Xorshift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// How often (in instructions) each worker polls cancel and deadline.
const POLL_STRIDE: u64 = 64;

struct Engine<'a> {
    p: &'a Program,
    cells: Vec<AtomicI64>,
    detector: Detector,
    deques: Vec<Mutex<VecDeque<Task<'a>>>>,
    injector: Mutex<VecDeque<Task<'a>>>,
    budget: Budget,
    cancel: &'a CancelToken,
    faults: &'a FaultPlan,
    grain: usize,
    max_steps: u64,
    next_tid: AtomicU32,
    steps: AtomicU64,
    stop: AtomicBool,
    cancelled: AtomicBool,
    exhausted: Mutex<Option<Exhaustion>>,
    panicked: Mutex<Option<(usize, String)>>,
    root_done: AtomicBool,
    root_completed: AtomicBool,
}

/// The helper functions return `Err(())` for "stop now"; the reason is
/// already recorded in the engine's control block.
type Go = Result<(), ()>;

impl<'a> Engine<'a> {
    fn trip(&self, e: Exhaustion) {
        self.exhausted.lock().unwrap().get_or_insert(e);
        self.stop.store(true, Ordering::Release);
    }

    fn poll(&self) -> Go {
        if self.cancel.is_cancelled() {
            self.cancelled.store(true, Ordering::Release);
            self.stop.store(true, Ordering::Release);
            return Err(());
        }
        if self.budget.deadline_exceeded() {
            self.trip(Exhaustion::Deadline);
            return Err(());
        }
        Ok(())
    }

    /// Charges one executed instruction and polls the stop conditions.
    fn charge(&self) -> Go {
        if self.stop.load(Ordering::Relaxed) {
            return Err(());
        }
        let n = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.max_steps {
            self.trip(Exhaustion::Steps);
            return Err(());
        }
        if self.budget.max_iters.is_some_and(|cap| n > cap) {
            self.trip(Exhaustion::SolverIterations);
            return Err(());
        }
        if n.is_multiple_of(POLL_STRIDE) {
            self.poll()?;
        }
        Ok(())
    }

    fn eval(&self, e: &Expr, label: Label, tid: u32, clock: &VClock) -> i64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Plus1(d) => {
                self.detector.on_read(*d, label, tid, clock);
                self.cells[*d].load(Ordering::Relaxed).wrapping_add(1)
            }
        }
    }

    /// Executes `s` as activity `tid`, spawning into `scope`.
    fn exec(
        &self,
        s: &'a Stmt,
        tid: u32,
        clock: &mut VClock,
        scope: &Arc<Scope>,
        ctx: &mut Wctx,
    ) -> Go {
        use fx10_syntax::InstrKind::*;
        for ins in s.instrs() {
            self.charge()?;
            match &ins.kind {
                Skip => {}
                Assign { idx, expr } => {
                    let v = self.eval(expr, ins.label, tid, clock);
                    self.detector.on_write(*idx, ins.label, tid, clock);
                    self.cells[*idx].store(v, Ordering::Relaxed);
                }
                While { idx, body } => loop {
                    self.detector.on_read(*idx, ins.label, tid, clock);
                    if self.cells[*idx].load(Ordering::Relaxed) == 0 {
                        break;
                    }
                    self.exec(body, tid, clock, scope, ctx)?;
                    self.charge()?;
                },
                Async { body } => {
                    let child_tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
                    let child_clock = VClock::fork(clock, tid, child_tid);
                    if self.grain > 0 && body.size() <= self.grain {
                        // Below the grain: run inline — still a fresh
                        // activity, so detection is unchanged.
                        let mut cc = child_clock;
                        let r = self.exec(body, child_tid, &mut cc, scope, ctx);
                        scope.acc.lock().unwrap().join(&cc);
                        r?;
                    } else {
                        scope.pending.fetch_add(1, Ordering::AcqRel);
                        self.deques[ctx.w].lock().unwrap().push_back(Task {
                            stmt: body,
                            scope: scope.clone(),
                            tid: child_tid,
                            clock: child_clock,
                            is_root: false,
                        });
                    }
                }
                Finish { body } => {
                    let inner = Arc::new(Scope::new());
                    self.exec(body, tid, clock, &inner, ctx)?;
                    self.wait_scope(&inner, ctx)?;
                    clock.join(&inner.acc.lock().unwrap());
                }
                Call { callee } => {
                    self.exec(self.p.body(*callee), tid, clock, scope, ctx)?;
                }
            }
        }
        Ok(())
    }

    /// Blocks until `scope`'s latch reaches zero, helping: any runnable
    /// task is executed inline rather than spinning.
    fn wait_scope(&self, scope: &Scope, ctx: &mut Wctx) -> Go {
        let mut idle = 0u64;
        while scope.pending.load(Ordering::Acquire) > 0 {
            if self.stop.load(Ordering::Relaxed) {
                return Err(());
            }
            if let Some(task) = self.grab(ctx) {
                idle = 0;
                self.run_task(task, ctx)?;
            } else {
                idle += 1;
                if idle.is_multiple_of(256) {
                    self.poll()?;
                }
                if idle < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::sleep(Duration::from_micros(20));
                }
            }
        }
        Ok(())
    }

    /// Own deque (back) → injector (front) → steal (front of a
    /// seeded-random victim).
    fn grab(&self, ctx: &mut Wctx) -> Option<Task<'a>> {
        if let Some(t) = self.deques[ctx.w].lock().unwrap().pop_back() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        let start = ctx.rng.next() as usize % n;
        for i in 0..n {
            let v = (start + i) % n;
            if v == ctx.w {
                continue;
            }
            if let Some(t) = self.deques[v].lock().unwrap().pop_front() {
                return Some(t);
            }
        }
        None
    }

    /// Runs one task to completion (panics propagate to the worker's
    /// `catch_unwind`; the latch guard keeps the scope sound).
    fn run_task(&self, task: Task<'a>, ctx: &mut Wctx) -> Go {
        ctx.processed += 1;
        if self.faults.should_panic(ctx.w, ctx.processed) {
            panic!("injected fault: worker {} poisoned", ctx.w);
        }
        let mut clock = task.clock;
        let latch = Latch {
            scope: &task.scope,
            armed: !task.is_root,
        };
        let r = self.exec(task.stmt, task.tid, &mut clock, &task.scope, ctx);
        if !task.is_root {
            // Fold the final clock before releasing the latch so the
            // waiter's join sees it.
            task.scope.acc.lock().unwrap().join(&clock);
        }
        latch.release();
        if task.is_root {
            r?;
            // The implicit whole-program finish.
            self.wait_scope(&task.scope, ctx)?;
            self.root_completed.store(true, Ordering::Release);
            self.root_done.store(true, Ordering::Release);
            return Ok(());
        }
        r
    }

    fn worker(&self, w: usize, seed: u64) {
        let mut ctx = Wctx {
            w,
            rng: Xorshift::new(seed),
            processed: 0,
        };
        let mut idle = 0u64;
        loop {
            if self.root_done.load(Ordering::Acquire) || self.stop.load(Ordering::Acquire) {
                return;
            }
            match self.grab(&mut ctx) {
                Some(task) => {
                    idle = 0;
                    let r = catch_unwind(AssertUnwindSafe(|| self.run_task(task, &mut ctx)));
                    match r {
                        Ok(_) => {}
                        Err(payload) => {
                            let message = panic_message(payload.as_ref());
                            self.panicked.lock().unwrap().get_or_insert((w, message));
                            self.stop.store(true, Ordering::Release);
                            return;
                        }
                    }
                }
                None => {
                    idle += 1;
                    if idle.is_multiple_of(256) && self.poll().is_err() {
                        return;
                    }
                    if idle < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::sleep(Duration::from_micros(20));
                    }
                }
            }
        }
    }
}

/// Runs `p` on the work-stealing crew.
///
/// Outcome precedence matches the explorer: worker panic
/// ([`Fx10Error::WorkerPanicked`], exit 4) > cancellation > budget
/// exhaustion (report with `completed: false`) > completion.
pub fn run_parallel(
    p: &Program,
    input: &[i64],
    cfg: &RtConfig,
    budget: Budget,
    cancel: &CancelToken,
    faults: &FaultPlan,
) -> Result<RunReport, Fx10Error> {
    let jobs = cfg.jobs.max(1);
    let init = ArrayState::with_input(p, input);
    let engine = Engine {
        p,
        cells: init.cells().iter().map(|&v| AtomicI64::new(v)).collect(),
        detector: Detector::new(init.cells().len()),
        deques: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
        injector: Mutex::new(VecDeque::new()),
        budget,
        cancel,
        faults,
        grain: cfg.grain,
        max_steps: cfg.max_steps,
        next_tid: AtomicU32::new(1),
        steps: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        cancelled: AtomicBool::new(false),
        exhausted: Mutex::new(None),
        panicked: Mutex::new(None),
        root_done: AtomicBool::new(false),
        root_completed: AtomicBool::new(false),
    };
    let root_scope = Arc::new(Scope::new());
    let mut root_clock = VClock::new();
    root_clock.bump(0);
    engine.injector.lock().unwrap().push_back(Task {
        stmt: p.body(p.main()),
        scope: root_scope,
        tid: 0,
        clock: root_clock,
        is_root: true,
    });
    std::thread::scope(|s| {
        let eng = &engine;
        for w in 0..jobs {
            let wseed = cfg
                .seed
                .wrapping_add((w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            s.spawn(move || eng.worker(w, wseed));
        }
    });
    if let Some((worker, message)) = engine.panicked.into_inner().unwrap() {
        return Err(Fx10Error::WorkerPanicked { worker, message });
    }
    if engine.cancelled.load(Ordering::Acquire) {
        return Err(Fx10Error::Cancelled);
    }
    let exhausted = engine.exhausted.into_inner().unwrap();
    Ok(RunReport {
        array: engine
            .cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        steps: engine.steps.load(Ordering::Relaxed),
        completed: engine.root_completed.load(Ordering::Acquire) && exhausted.is_none(),
        exhausted,
        races: engine.detector.races(),
        activities: engine.next_tid.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elide::run_elision;
    use fx10_robust::PanicFault;
    use std::time::Instant;

    fn cfg(jobs: usize, seed: u64) -> RtConfig {
        RtConfig {
            jobs,
            seed,
            ..RtConfig::default()
        }
    }

    fn run(src: &str, jobs: usize, seed: u64) -> RunReport {
        let p = Program::parse(src).unwrap();
        run_parallel(
            &p,
            &[],
            &cfg(jobs, seed),
            Budget::unlimited(),
            &CancelToken::new(),
            &FaultPlan::none(),
        )
        .unwrap()
    }

    const FORK_JOIN: &str = "def main() {
        finish { async { a[0] = 1; } async { a[1] = 1; } }
        a[0] = a[1] + 1; a[1] = a[0] + 1;
    }";

    #[test]
    fn fork_join_matches_elision_on_every_crew_size() {
        let p = Program::parse(FORK_JOIN).unwrap();
        let serial =
            run_elision(&p, &[], u64::MAX, Budget::unlimited(), &CancelToken::new()).unwrap();
        assert!(serial.races.is_empty());
        for jobs in [1, 2, 8] {
            for seed in 0..8 {
                let par = run(FORK_JOIN, jobs, seed);
                assert!(par.completed);
                assert_eq!(par.array, serial.array, "jobs={jobs} seed={seed}");
                assert_eq!(par.steps, serial.steps, "jobs={jobs} seed={seed}");
                assert!(par.races.is_empty());
            }
        }
    }

    #[test]
    fn racy_program_is_flagged_by_some_schedule_independently() {
        // Detection is schedule-independent: every run flags the pair.
        for jobs in [1, 4] {
            let out = run("def main() { async { a[0] = 1; } a[0] = 2; }", jobs, 7);
            assert!(out.completed);
            assert_eq!(out.races.len(), 1);
        }
    }

    #[test]
    fn granularity_inlines_without_changing_results() {
        let p = Program::parse(FORK_JOIN).unwrap();
        let coarse = run_parallel(
            &p,
            &[],
            &RtConfig {
                jobs: 4,
                grain: 64,
                ..RtConfig::default()
            },
            Budget::unlimited(),
            &CancelToken::new(),
            &FaultPlan::none(),
        )
        .unwrap();
        let fine = run(FORK_JOIN, 4, 0);
        assert_eq!(coarse.array, fine.array);
        assert_eq!(coarse.steps, fine.steps);
        assert_eq!(coarse.activities, fine.activities);
    }

    #[test]
    fn injected_panic_releases_the_latch_and_reports_exit_4() {
        // finish over several asyncs; worker 0 panics on its 2nd task.
        let src = "def main() { finish {
            async { a[0] = 1; } async { a[1] = 1; }
            async { a[2] = 1; } async { a[3] = 1; }
        } K; }";
        let p = Program::parse(src).unwrap();
        let faults = FaultPlan {
            panic_worker: Some(PanicFault {
                worker: 0,
                after_states: 2,
            }),
            ..FaultPlan::none()
        };
        // Must return (latch released during unwind), not hang.
        let err = run_parallel(
            &p,
            &[],
            &cfg(2, 3),
            Budget::unlimited(),
            &CancelToken::new(),
            &faults,
        )
        .unwrap_err();
        match &err {
            Fx10Error::WorkerPanicked { worker, .. } => assert_eq!(*worker, 0),
            e => panic!("expected WorkerPanicked, got {e}"),
        }
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn cancel_and_deadline_stop_a_diverging_program() {
        let src = "def main() { a[0] = 1; while (a[0] != 0) { S; } }";
        let p = Program::parse(src).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = run_parallel(
            &p,
            &[],
            &cfg(2, 0),
            Budget::unlimited(),
            &cancel,
            &FaultPlan::none(),
        )
        .unwrap_err();
        assert!(matches!(err, Fx10Error::Cancelled));

        let budget = Budget {
            deadline: Some(Instant::now() + Duration::from_millis(50)),
            ..Budget::unlimited()
        };
        let out = run_parallel(
            &p,
            &[],
            &cfg(2, 0),
            budget,
            &CancelToken::new(),
            &FaultPlan::none(),
        )
        .unwrap();
        assert!(!out.completed);
        assert_eq!(out.exhausted, Some(Exhaustion::Deadline));
    }

    #[test]
    fn step_cap_truncates_like_the_elision_engine() {
        let p = Program::parse("def main() { S1; S2; S3; S4; }").unwrap();
        let out = run_parallel(
            &p,
            &[],
            &RtConfig {
                jobs: 1,
                max_steps: 2,
                ..RtConfig::default()
            },
            Budget::unlimited(),
            &CancelToken::new(),
            &FaultPlan::none(),
        )
        .unwrap();
        assert!(!out.completed);
        assert_eq!(out.exhausted, Some(Exhaustion::Steps));
    }
}
