//! # fx10-runtime
//!
//! Real parallel execution of FX10 programs — the first engine in this
//! workspace that *runs* programs instead of analyzing them.
//!
//! Three executors share one [`RunReport`] and one vector-clock race
//! detector ([`detect`]):
//!
//! * [`run_parallel`] — a std-only work-stealing scheduler (per-worker
//!   deques + injector, help-first `finish` latches, granularity
//!   control, panic isolation) executing `async` bodies on a real
//!   thread crew;
//! * [`run_elision`] — sequential elision, the classic fork-join
//!   correctness oracle: for race-free programs every parallel run must
//!   reproduce its array state and step count byte-for-byte;
//! * [`replay_detect`] — a guided executor that replays explorer
//!   witness schedules (the lint suite's confirmed races) over a
//!   clock-carrying mirror of the execution tree, turning static
//!   witnesses into dynamically observed races.
//!
//! Together they make the paper's Theorem 2 executable: every race any
//! of these engines observes must lie inside the static
//! may-happen-in-parallel over-approximation — a differential oracle
//! the workspace test suite and CI enforce.

#![warn(missing_docs)]
pub mod detect;
pub mod elide;
pub mod replay;
pub mod sched;

pub use detect::{DetectedRace, Detector, VClock};
pub use elide::run_elision;
pub use replay::replay_detect;
pub use sched::{run_parallel, RtConfig};

use fx10_robust::Exhaustion;
use fx10_semantics::LabelPair;
use std::collections::BTreeSet;

/// The outcome of one runtime execution (any engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Final contents of the shared array.
    pub array: Vec<i64>,
    /// Executed instructions (identical across schedules for race-free
    /// programs; the currency of the elision oracle).
    pub steps: u64,
    /// Did the program run to completion?
    pub completed: bool,
    /// Why execution was truncated, when `completed` is false.
    pub exhausted: Option<Exhaustion>,
    /// Every race the detector observed on this execution.
    pub races: BTreeSet<DetectedRace>,
    /// Activities that existed (root + every executed `async`).
    pub activities: u32,
}

impl RunReport {
    /// The observed race pairs (normalized labels), cells stripped —
    /// the currency of the dynamic ⊆ static containment oracle.
    pub fn race_pairs(&self) -> BTreeSet<LabelPair> {
        self.races.iter().map(|r| r.pair).collect()
    }
}
