//! Guided replay: drive the runtime's race detector along an explorer
//! witness schedule.
//!
//! The lint suite's confirmed races (PR 4) carry a schedule of successor
//! *choices* into [`fx10_semantics::step::successors`]'s deterministic
//! enumeration ("rule number, then left-to-right"). To replay one on the
//! real detector we execute over a clock-carrying mirror of the
//! execution tree — [`CTree`] — whose move enumeration reproduces
//! `push_successors` exactly:
//!
//! * `T₁ ▷ T₂`: rule (1) when `T₁ = √` (exactly one move), else the
//!   moves of `T₁`;
//! * `T₁ ∥ T₂`: rule (3) if `T₁ = √`, then rule (4) if `T₂ = √`, then
//!   the moves of `T₁`, then the moves of `T₂`;
//! * `⟨s⟩`: the unique statement step, rules (7)–(14).
//!
//! Every node carries an accumulator of *completed* activities' final
//! clocks: eliminating `√` from a `∥` folds its accumulator into the
//! survivor **without** creating a happens-before edge (a completed
//! `async` orders nothing), while rule (1) — the `finish` join — joins
//! the left tree's accumulator into the continuation's *active* clock.
//! The unit tests validate the mirror by lockstep comparison against
//! `successors` on random walks.
//!
//! A witness schedule ends at a state where the racing pair is merely
//! *co-enabled*, so after consuming the schedule we continue leftmost
//! (choice 0) to completion: both accesses then execute and the
//! detector reports the pair.

use crate::detect::{Detector, VClock};
use crate::RunReport;
use fx10_robust::{Exhaustion, Fx10Error};
#[cfg(test)]
use fx10_semantics::Tree;
use fx10_syntax::{Expr, Label, Program, Stmt};

/// A clock-carrying execution tree. `acc` accumulates the final clocks
/// of activities that completed *at this position* (folded upward by the
/// `√`-elimination rules, joined into a waiter by rule (1)).
struct CTree {
    acc: VClock,
    node: CNode,
}

enum CNode {
    Done,
    Stm { stmt: Stmt, tid: u32, clock: VClock },
    Seq { l: Box<CTree>, r: Box<CTree> },
    Par { l: Box<CTree>, r: Box<CTree> },
}

impl CTree {
    fn done(acc: VClock) -> CTree {
        CTree {
            acc,
            node: CNode::Done,
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.node, CNode::Done)
    }

    /// Number of enabled moves — `successors(p, a, t).len()` for the
    /// mirrored tree.
    fn moves(&self) -> usize {
        match &self.node {
            CNode::Done => 0,
            CNode::Stm { .. } => 1,
            CNode::Seq { l, .. } => {
                if l.is_done() {
                    1
                } else {
                    l.moves()
                }
            }
            CNode::Par { l, r } => {
                usize::from(l.is_done()) + usize::from(r.is_done()) + l.moves() + r.moves()
            }
        }
    }

    /// The plain [`Tree`] this mirrors (clocks erased) — the lockstep
    /// validation hook.
    #[cfg(test)]
    fn to_tree(&self) -> Tree {
        match &self.node {
            CNode::Done => Tree::Done,
            CNode::Stm { stmt, .. } => Tree::stm(stmt.clone()),
            CNode::Seq { l, r } => Tree::seq(l.to_tree(), r.to_tree()),
            CNode::Par { l, r } => Tree::par(l.to_tree(), r.to_tree()),
        }
    }
}

/// Rule (1)'s join edge: everything the finished body completed
/// happens-before every activity still alive in the continuation.
fn join_hb(t: &mut CTree, acc: &VClock) {
    match &mut t.node {
        CNode::Done => t.acc.join(acc),
        CNode::Stm { clock, .. } => clock.join(acc),
        CNode::Seq { l, r } | CNode::Par { l, r } => {
            join_hb(l, acc);
            join_hb(r, acc);
        }
    }
}

struct Rctx<'a> {
    p: &'a Program,
    cells: Vec<i64>,
    detector: Detector,
    next_tid: u32,
    steps: u64,
}

impl Rctx<'_> {
    fn eval(&mut self, e: &Expr, label: Label, tid: u32, clock: &VClock) -> i64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Plus1(d) => {
                self.detector.on_read(*d, label, tid, clock);
                self.cells[*d].wrapping_add(1)
            }
        }
    }

    /// Rules (7)–(14): the unique step of a leaf, instrumented.
    fn step_leaf(&mut self, acc: VClock, stmt: Stmt, tid: u32, mut clock: VClock) -> CTree {
        use fx10_syntax::InstrKind::*;
        self.steps += 1;
        let head = stmt.head();
        let label = head.label;
        // `⟨k⟩`, or `√` folding the activity's final clock into the
        // position's accumulator.
        let cont = |acc: VClock, clock: VClock, stmt: &Stmt| match stmt.tail() {
            Some(k) => CTree {
                acc,
                node: CNode::Stm {
                    stmt: k,
                    tid,
                    clock,
                },
            },
            None => {
                let mut a = acc;
                a.join(&clock);
                CTree::done(a)
            }
        };
        match head.kind.clone() {
            Skip => cont(acc, clock, &stmt),
            Assign { idx, expr } => {
                let v = self.eval(&expr, label, tid, &clock);
                self.detector.on_write(idx, label, tid, &clock);
                self.cells[idx] = v;
                cont(acc, clock, &stmt)
            }
            While { idx, body } => {
                self.detector.on_read(idx, label, tid, &clock);
                if self.cells[idx] == 0 {
                    cont(acc, clock, &stmt)
                } else {
                    CTree {
                        acc,
                        node: CNode::Stm {
                            stmt: body.seq(stmt),
                            tid,
                            clock,
                        },
                    }
                }
            }
            Async { body } => {
                let child_tid = self.next_tid;
                self.next_tid += 1;
                let child_clock = VClock::fork(&mut clock, tid, child_tid);
                let child = CTree {
                    acc: VClock::new(),
                    node: CNode::Stm {
                        stmt: body,
                        tid: child_tid,
                        clock: child_clock,
                    },
                };
                let k = cont(VClock::new(), clock, &stmt);
                CTree {
                    acc,
                    node: CNode::Par {
                        l: Box::new(child),
                        r: Box::new(k),
                    },
                }
            }
            Finish { body } => {
                let body_leaf = CTree {
                    acc: VClock::new(),
                    node: CNode::Stm {
                        stmt: body,
                        tid,
                        clock: clock.clone(),
                    },
                };
                let k = cont(VClock::new(), clock, &stmt);
                CTree {
                    acc,
                    node: CNode::Seq {
                        l: Box::new(body_leaf),
                        r: Box::new(k),
                    },
                }
            }
            Call { callee } => {
                let body = self.p.body(callee).clone();
                let unrolled = match stmt.tail() {
                    Some(k) => body.seq(k),
                    None => body,
                };
                CTree {
                    acc,
                    node: CNode::Stm {
                        stmt: unrolled,
                        tid,
                        clock,
                    },
                }
            }
        }
    }

    /// Applies move `n` of the mirrored enumeration.
    fn apply(&mut self, t: CTree, n: usize) -> CTree {
        let CTree { acc, node } = t;
        match node {
            CNode::Done => unreachable!("√ has no moves"),
            CNode::Stm { stmt, tid, clock } => self.step_leaf(acc, stmt, tid, clock),
            CNode::Seq { l, r } => {
                if l.is_done() {
                    // Rule (1): the finish join.
                    let mut out = *r;
                    join_hb(&mut out, &l.acc);
                    out.acc.join(&acc);
                    out
                } else {
                    let l2 = self.apply(*l, n);
                    CTree {
                        acc,
                        node: CNode::Seq { l: Box::new(l2), r },
                    }
                }
            }
            CNode::Par { l, r } => {
                let mut n = n;
                if l.is_done() {
                    if n == 0 {
                        // Rule (3): fold, no happens-before edge.
                        let mut out = *r;
                        out.acc.join(&l.acc);
                        out.acc.join(&acc);
                        return out;
                    }
                    n -= 1;
                }
                if r.is_done() {
                    if n == 0 {
                        // Rule (4).
                        let mut out = *l;
                        out.acc.join(&r.acc);
                        out.acc.join(&acc);
                        return out;
                    }
                    n -= 1;
                }
                let lm = l.moves();
                if n < lm {
                    let l2 = self.apply(*l, n);
                    CTree {
                        acc,
                        node: CNode::Par { l: Box::new(l2), r },
                    }
                } else {
                    let r2 = self.apply(*r, n - lm);
                    CTree {
                        acc,
                        node: CNode::Par { l, r: Box::new(r2) },
                    }
                }
            }
        }
    }
}

fn initial(p: &Program) -> CTree {
    let mut clock = VClock::new();
    clock.bump(0);
    CTree {
        acc: VClock::new(),
        node: CNode::Stm {
            stmt: p.body(p.main()).clone(),
            tid: 0,
            clock,
        },
    }
}

/// Replays `schedule` (explorer successor choices) from the initial
/// state, then continues leftmost to completion, with the race detector
/// on throughout. `max_steps` bounds total applied moves (admin steps
/// included), so a schedule into a diverging program still returns —
/// truncation reports [`Exhaustion::Steps`] with `completed: false`.
///
/// An out-of-range choice is a validation error: the schedule does not
/// belong to this program/input.
pub fn replay_detect(
    p: &Program,
    input: &[i64],
    schedule: &[u32],
    max_steps: u64,
) -> Result<RunReport, Fx10Error> {
    let init = fx10_semantics::ArrayState::with_input(p, input);
    let mut rt = Rctx {
        p,
        cells: init.cells().to_vec(),
        detector: Detector::new(init.cells().len()),
        next_tid: 1,
        steps: 0,
    };
    let mut t = initial(p);
    let mut applied = 0u64;
    for (i, &choice) in schedule.iter().enumerate() {
        let avail = t.moves();
        if (choice as usize) >= avail {
            return Err(Fx10Error::Validate(format!(
                "witness schedule step {i}: choice {choice} out of range ({avail} enabled)"
            )));
        }
        t = rt.apply(t, choice as usize);
        applied += 1;
        if applied >= max_steps && !t.is_done() {
            return Ok(truncated(rt));
        }
    }
    while !t.is_done() {
        t = rt.apply(t, 0);
        applied += 1;
        if applied >= max_steps {
            return Ok(truncated(rt));
        }
    }
    Ok(RunReport {
        array: rt.cells,
        steps: rt.steps,
        completed: true,
        exhausted: None,
        races: rt.detector.races(),
        activities: rt.next_tid,
    })
}

fn truncated(rt: Rctx<'_>) -> RunReport {
    RunReport {
        array: rt.cells,
        steps: rt.steps,
        completed: false,
        exhausted: Some(Exhaustion::Steps),
        races: rt.detector.races(),
        activities: rt.next_tid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_semantics::step::{initial_tree, successors};
    use fx10_semantics::ArrayState;

    /// Random-walks `p`, applying the same choice to the semantics'
    /// `successors` enumeration and to the mirror, asserting the trees
    /// and arrays stay identical at every step.
    fn lockstep(src: &str, input: &[i64], seed: u64) {
        let p = Program::parse(src).unwrap();
        let mut tree = initial_tree(&p);
        let mut array = ArrayState::with_input(&p, input);
        let init = ArrayState::with_input(&p, input);
        let mut rt = Rctx {
            p: &p,
            cells: init.cells().to_vec(),
            detector: Detector::new(init.cells().len()),
            next_tid: 1,
            steps: 0,
        };
        let mut ct = initial(&p);
        let mut x = seed | 1;
        for step in 0..10_000u32 {
            if tree.is_done() {
                assert!(ct.is_done());
                return;
            }
            let succ = successors(&p, &array, &tree);
            assert_eq!(
                ct.moves(),
                succ.len(),
                "move-count divergence at step {step} on {src}"
            );
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let choice = (x as usize) % succ.len();
            let chosen = succ.into_iter().nth(choice).unwrap();
            array = chosen.array;
            tree = chosen.tree;
            ct = rt.apply(ct, choice);
            assert_eq!(
                ct.to_tree(),
                tree,
                "tree divergence at step {step} on {src}"
            );
            assert_eq!(
                rt.cells,
                array.cells(),
                "array divergence at step {step} on {src}"
            );
        }
        panic!("walk did not terminate on {src}");
    }

    #[test]
    fn mirror_agrees_with_successors_on_structured_programs() {
        let programs = [
            "def main() { skip; }",
            "def main() { a[0] = 1; a[1] = a[0] + 1; }",
            "def main() { async { a[0] = 1; } a[1] = 2; }",
            "def main() { finish { async { a[0] = 1; } async { a[1] = 1; } } a[2] = a[0] + 1; }",
            "def main() { a[0] = 1; while (a[0] != 0) { a[0] = 0; async { a[1] = 1; } } }",
            "def f() { a[2] = 5; } def main() { finish { async { f(); } } f(); }",
            "def main() { finish { async { finish { async { a[0] = 1; } } a[1] = 1; } } }",
        ];
        for (i, src) in programs.iter().enumerate() {
            for seed in 0..16 {
                lockstep(src, &[], ((i as u64) << 8) | seed);
            }
        }
    }

    #[test]
    fn replay_of_a_racy_schedule_detects_the_pair() {
        use fx10_robust::{Budget, CancelToken};
        use fx10_semantics::witness::{find_witness, WitnessSearch};
        let p = Program::parse("def main() { async { W1: a[0] = 1; } W2: a[0] = 2; }").unwrap();
        let w1 = p.labels().lookup("W1").unwrap();
        let w2 = p.labels().lookup("W2").unwrap();
        let found = find_witness(
            &p,
            &[],
            (w1, w2),
            10_000,
            Budget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap();
        let w = match found {
            WitnessSearch::Found(w) => w,
            other => panic!("expected witness, got {other:?}"),
        };
        let out = replay_detect(&p, &[], &w.schedule, 100_000).unwrap();
        assert!(out.completed);
        let pairs = out.race_pairs();
        assert!(
            pairs.contains(&fx10_semantics::parallel::pair(w1, w2)),
            "replayed schedule missed the witness pair: {pairs:?}"
        );
    }

    #[test]
    fn race_free_replay_matches_elision_state() {
        use fx10_robust::{Budget, CancelToken};
        let src =
            "def main() { finish { async { a[0] = 1; } async { a[1] = 1; } } a[2] = a[0] + 1; }";
        let p = Program::parse(src).unwrap();
        let serial =
            crate::elide::run_elision(&p, &[], u64::MAX, Budget::unlimited(), &CancelToken::new())
                .unwrap();
        // Any schedule of a race-free program ends in the serial state;
        // exercise a few prefixes (after the finish step the body leaf
        // asyncs, opening real choice points).
        for schedule in [vec![], vec![0], vec![0, 0], vec![0, 0, 1]] {
            let out = replay_detect(&p, &[], &schedule, 100_000).unwrap();
            assert!(out.completed);
            assert_eq!(out.array, serial.array);
            assert!(out.races.is_empty());
        }
    }

    #[test]
    fn bad_choice_is_a_validation_error() {
        let p = Program::parse("def main() { skip; }").unwrap();
        let err = replay_detect(&p, &[], &[5], 100).unwrap_err();
        assert!(matches!(err, Fx10Error::Validate(_)));
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn diverging_program_truncates_at_the_move_cap() {
        let p = Program::parse("def main() { a[0] = 1; while (a[0] != 0) { S; } }").unwrap();
        let out = replay_detect(&p, &[], &[], 500).unwrap();
        assert!(!out.completed);
        assert_eq!(out.exhausted, Some(Exhaustion::Steps));
    }
}
