//! Sequential elision: execute the program serially, depth-first, with
//! the race detector on.
//!
//! Elision replaces every `async { s }` with an inline call of `s` (in a
//! fresh activity, so the detector still sees the fork) and every
//! `finish` with its body — the classic correctness oracle for
//! fork-join runtimes: **for race-free programs, any parallel run must
//! produce exactly this array state**. The detector makes the oracle
//! self-qualifying: the elision run itself reports whether the program
//! was race-free on the executed path (happens-before here is
//! schedule-independent, see [`crate::detect`]).
//!
//! Step accounting counts *executed instructions* — one per `skip`,
//! assignment, `async`, `finish`, `call`, and one per `while` guard
//! evaluation — which is the same number for every schedule of a
//! race-free program, so the parallel engine's count is byte-identical.

use crate::detect::{Detector, VClock};
use crate::RunReport;
use fx10_robust::{Budget, BudgetMeter, CancelToken, Exhaustion, Fx10Error, Stop};
use fx10_semantics::ArrayState;
use fx10_syntax::{Expr, Label, Program, Stmt};

/// Why execution stopped early.
enum Halt {
    /// The `max_steps` cap tripped.
    Steps,
    /// The budget meter asked us to stop (deadline, iteration budget, or
    /// cancellation).
    Stop(Stop),
}

struct Elider<'a> {
    p: &'a Program,
    cells: Vec<i64>,
    detector: Detector,
    meter: BudgetMeter,
    steps: u64,
    max_steps: u64,
    next_tid: u32,
}

impl<'a> Elider<'a> {
    fn charge(&mut self) -> Result<(), Halt> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(Halt::Steps);
        }
        self.meter.tick().map_err(Halt::Stop)
    }

    fn eval(&mut self, e: &Expr, label: Label, tid: u32, clock: &VClock) -> i64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Plus1(d) => {
                self.detector.on_read(*d, label, tid, clock);
                self.cells[*d].wrapping_add(1)
            }
        }
    }

    /// Runs `s` to completion as activity `tid`. `scopes` is the stack of
    /// open `finish` accumulators (the root scope at the bottom).
    fn exec(
        &mut self,
        s: &'a Stmt,
        tid: u32,
        clock: &mut VClock,
        scopes: &mut Vec<VClock>,
    ) -> Result<(), Halt> {
        use fx10_syntax::InstrKind::*;
        for ins in s.instrs() {
            self.charge()?;
            match &ins.kind {
                Skip => {}
                Assign { idx, expr } => {
                    let v = self.eval(expr, ins.label, tid, clock);
                    self.detector.on_write(*idx, ins.label, tid, clock);
                    self.cells[*idx] = v;
                }
                While { idx, body } => loop {
                    self.detector.on_read(*idx, ins.label, tid, clock);
                    if self.cells[*idx] == 0 {
                        break;
                    }
                    self.exec(body, tid, clock, scopes)?;
                    // The guard re-evaluation is a step of its own.
                    self.charge()?;
                },
                Async { body } => {
                    let child_tid = self.next_tid;
                    self.next_tid += 1;
                    let mut child_clock = VClock::fork(clock, tid, child_tid);
                    self.exec(body, child_tid, &mut child_clock, scopes)?;
                    // No happens-before edge: the child's clock only folds
                    // into the enclosing finish's accumulator.
                    scopes.last_mut().unwrap().join(&child_clock);
                }
                Finish { body } => {
                    scopes.push(VClock::new());
                    let r = self.exec(body, tid, clock, scopes);
                    let acc = scopes.pop().unwrap();
                    r?;
                    // The join edge: everything spawned under the finish
                    // happens-before the continuation.
                    clock.join(&acc);
                }
                Call { callee } => {
                    let p = self.p;
                    self.exec(p.body(*callee), tid, clock, scopes)?;
                }
            }
        }
        Ok(())
    }
}

/// Runs `p` serially under sequential elision, race detector on.
///
/// `max_steps` bounds executed instructions ([`Exhaustion::Steps`] when
/// exceeded); `budget`'s iteration cap and deadline are honored on the
/// same stride as the analyses, and `cancel` unwinds with
/// [`Fx10Error::Cancelled`].
pub fn run_elision(
    p: &Program,
    input: &[i64],
    max_steps: u64,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<RunReport, Fx10Error> {
    let cells = ArrayState::with_input(p, input).cells().to_vec();
    let mut e = Elider {
        p,
        detector: Detector::new(cells.len()),
        cells,
        meter: BudgetMeter::new(budget, cancel.clone()),
        steps: 0,
        max_steps,
        next_tid: 1,
    };
    let mut clock = VClock::new();
    clock.bump(0);
    let mut scopes = vec![VClock::new()];
    let r = e.exec(p.body(p.main()), 0, &mut clock, &mut scopes);
    let exhausted = match r {
        Ok(()) => None,
        Err(Halt::Steps) => Some(Exhaustion::Steps),
        Err(Halt::Stop(Stop::Exhausted(x))) => Some(x),
        Err(Halt::Stop(Stop::Cancelled)) => return Err(Fx10Error::Cancelled),
    };
    Ok(RunReport {
        array: e.cells,
        steps: e.steps,
        completed: exhausted.is_none(),
        exhausted,
        races: e.detector.races(),
        activities: e.next_tid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn run(src: &str, input: &[i64]) -> RunReport {
        let p = Program::parse(src).unwrap();
        run_elision(
            &p,
            input,
            u64::MAX,
            Budget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap()
    }

    #[test]
    fn straight_line_program_computes_and_counts() {
        let out = run("def main() { a[0] = 1; a[1] = a[0] + 1; }", &[]);
        assert!(out.completed);
        assert_eq!(out.array, vec![1, 2]);
        assert_eq!(out.steps, 2);
        assert_eq!(out.activities, 1);
        assert!(out.races.is_empty());
    }

    #[test]
    fn racy_async_is_detected_even_serially() {
        let out = run("def main() { W1: async { a[0] = 1; } W2: a[0] = 2; }", &[]);
        assert!(out.completed);
        assert_eq!(out.races.len(), 1);
        assert_eq!(out.activities, 2);
    }

    #[test]
    fn finish_protects_the_continuation() {
        let out = run(
            "def main() { finish { async { a[0] = 1; } } a[0] = 2; }",
            &[],
        );
        assert!(out.completed);
        assert!(out.races.is_empty());
        assert_eq!(out.array, vec![2]);
    }

    #[test]
    fn while_counts_each_guard_evaluation() {
        // a[0]=1; guard true; body sets a[0]=0; guard false.
        let out = run(
            "def main() { a[0] = 1; while (a[0] != 0) { a[0] = 0; } }",
            &[],
        );
        assert!(out.completed);
        // assign + guard + body assign + guard = 4.
        assert_eq!(out.steps, 4);
    }

    #[test]
    fn step_cap_reports_steps_exhaustion() {
        let p = Program::parse("def main() { S1; S2; S3; }").unwrap();
        let out = run_elision(&p, &[], 2, Budget::unlimited(), &CancelToken::new()).unwrap();
        assert!(!out.completed);
        assert_eq!(out.exhausted, Some(Exhaustion::Steps));
        assert_eq!(out.steps, 3); // the third charge tripped
    }

    #[test]
    fn cancellation_unwinds_and_deadline_truncates() {
        // Diverging loop: only the meter can stop it. The poll stride is
        // 64, so both checks fire deterministically.
        let p = Program::parse("def main() { a[0] = 1; while (a[0] != 0) { S; } }").unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = run_elision(&p, &[], u64::MAX, Budget::unlimited(), &cancel);
        assert!(matches!(out, Err(Fx10Error::Cancelled)));

        let budget = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::unlimited()
        };
        let out = run_elision(&p, &[], u64::MAX, budget, &CancelToken::new()).unwrap();
        assert!(!out.completed);
        assert_eq!(out.exhausted, Some(Exhaustion::Deadline));
    }
}
