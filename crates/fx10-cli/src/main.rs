//! `fx10` — command-line driver for the FX10 calculus and its MHP
//! analysis.
//!
//! ```text
//! fx10 parse   <file.fx10>                    check & pretty-print
//! fx10 run     <file.fx10> [--sched S] [--input v,v,...] [--steps N]
//! fx10 explore <file.fx10> [--max-states N]   exhaustive dynamic MHP
//! fx10 mhp     <file.fx10> [--ci]             static MHP pairs
//! fx10 race    <file.fx10>                    MHP-based race report
//! fx10 check   <file.fx10>                    soundness: dynamic ⊆ static
//! fx10 x10     <file.x10>  [--ci]             X10-Lite condensed analysis
//! fx10 bench   <name|all>                     run a suite benchmark
//! ```

use fx10_core::analyze;
use fx10_semantics::{explore, run, ExploreConfig, Scheduler};
use fx10_syntax::Program;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fx10 <parse|run|explore|mhp|race|check|x10|bench> <file|name> [options]\n\
         options:\n\
           --sched <leftmost|rightmost|random[:seed]>   scheduler (run)\n\
           --input v,v,...                              initial array (run/explore)\n\
           --steps N                                    step budget (run)\n\
           --max-states N                               exploration cap\n\
           --ci                                         context-insensitive analysis\n\
           --solver <naive|worklist|scc|scc-par>        fixed-point algorithm\n\
           --places                                     same-place MHP refinement (x10)"
    );
    ExitCode::from(2)
}

struct Opts {
    sched: Scheduler,
    input: Vec<i64>,
    steps: u64,
    max_states: usize,
    ci: bool,
    solver: fx10_core::analysis::SolverKind,
    places: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        sched: Scheduler::Leftmost,
        input: vec![],
        steps: 1_000_000,
        max_states: 200_000,
        ci: false,
        solver: fx10_core::analysis::SolverKind::Naive,
        places: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sched" => {
                i += 1;
                let v = args.get(i).ok_or("--sched needs a value")?;
                o.sched = match v.split(':').collect::<Vec<_>>().as_slice() {
                    ["leftmost"] => Scheduler::Leftmost,
                    ["rightmost"] => Scheduler::Rightmost,
                    ["random"] => Scheduler::Random(0xf10),
                    ["random", seed] => {
                        Scheduler::Random(seed.parse().map_err(|_| "bad seed")?)
                    }
                    _ => return Err(format!("unknown scheduler `{v}`")),
                };
            }
            "--input" => {
                i += 1;
                let v = args.get(i).ok_or("--input needs a value")?;
                o.input = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|_| format!("bad input `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--steps" => {
                i += 1;
                o.steps = args
                    .get(i)
                    .ok_or("--steps needs a value")?
                    .parse()
                    .map_err(|_| "bad step count")?;
            }
            "--max-states" => {
                i += 1;
                o.max_states = args
                    .get(i)
                    .ok_or("--max-states needs a value")?
                    .parse()
                    .map_err(|_| "bad state count")?;
            }
            "--ci" => o.ci = true,
            "--places" => o.places = true,
            "--solver" => {
                i += 1;
                let v = args.get(i).ok_or("--solver needs a value")?;
                o.solver = match v.as_str() {
                    "naive" => fx10_core::analysis::SolverKind::Naive,
                    "worklist" => fx10_core::analysis::SolverKind::Worklist,
                    "scc" => fx10_core::analysis::SolverKind::Scc,
                    "scc-par" => fx10_core::analysis::SolverKind::SccParallel(
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(4),
                    ),
                    other => return Err(format!("unknown solver `{other}`")),
                };
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    Ok(o)
}

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Program::parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let (target, optargs) = match rest.split_first() {
        Some((t, o)) => (t.as_str(), o),
        None => return usage(),
    };
    let opts = match parse_opts(optargs) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };

    let result = (|| -> Result<(), String> {
        match cmd {
            "parse" => {
                let p = load(target)?;
                println!(
                    "{} method(s), {} instruction(s), array length {}",
                    p.method_count(),
                    p.label_count(),
                    p.array_len()
                );
                print!("{}", fx10_syntax::pretty::program(&p));
            }
            "run" => {
                let p = load(target)?;
                let out = run(&p, &opts.input, opts.sched, opts.steps);
                if out.completed {
                    println!("completed in {} steps", out.steps);
                } else {
                    println!("step budget ({}) exhausted", opts.steps);
                }
                println!("a = {:?}", out.array.cells());
                println!("result a[0] = {}", out.array.result());
            }
            "explore" => {
                let p = load(target)?;
                let e = explore(
                    &p,
                    &opts.input,
                    ExploreConfig {
                        max_states: opts.max_states,
                        ..ExploreConfig::default()
                    },
                );
                println!(
                    "{} state(s) visited{}, {} terminal(s), deadlock-free: {}",
                    e.visited,
                    if e.truncated { " (truncated)" } else { "" },
                    e.terminals,
                    e.deadlock_free
                );
                println!("dynamic MHP pairs ({}):", e.mhp.len());
                for &(a, b) in &e.mhp {
                    println!(
                        "  ({}, {})",
                        p.labels().display(a),
                        p.labels().display(b)
                    );
                }
            }
            "mhp" => {
                let p = load(target)?;
                let mode = if opts.ci {
                    fx10_core::Mode::ContextInsensitive { keep_scross: true }
                } else {
                    fx10_core::Mode::ContextSensitive
                };
                let a = fx10_core::analyze_with(&p, mode, opts.solver);
                println!(
                    "{} analysis: {} constraint(s), iterations S/1/2 = {}/{}/{}",
                    if opts.ci {
                        "context-insensitive"
                    } else {
                        "context-sensitive"
                    },
                    a.stats.slabels_constraints
                        + a.stats.level1_constraints
                        + a.stats.level2_constraints,
                    a.stats.slabels_passes,
                    a.stats.level1_passes,
                    a.stats.level2_passes
                );
                let pairs = a.pairs_named(&p);
                println!("MHP pairs ({}):", pairs.len());
                for (x, y) in pairs {
                    println!("  ({x}, {y})");
                }
                let rep = fx10_core::report::async_pairs(&a);
                print!("{}", fx10_core::report::render_report(&p, &rep));
            }
            "race" => {
                let p = load(target)?;
                let a = analyze(&p);
                let races = fx10_core::race::detect_races(&p, &a);
                print!("{}", fx10_core::race::render_races(&p, &races));
            }
            "check" => {
                let p = load(target)?;
                let a = analyze(&p);
                let e = explore(
                    &p,
                    &opts.input,
                    ExploreConfig {
                        max_states: opts.max_states,
                        ..ExploreConfig::default()
                    },
                );
                let mut missing = 0usize;
                for &(x, y) in &e.mhp {
                    if !a.may_happen_in_parallel(x, y) {
                        missing += 1;
                        println!(
                            "UNSOUND: dynamic pair ({}, {}) not in static MHP",
                            p.labels().display(x),
                            p.labels().display(y)
                        );
                    }
                }
                let static_n = a.mhp().len();
                println!(
                    "dynamic pairs: {} ({} states{}), static pairs: {}, deadlock-free: {}",
                    e.mhp.len(),
                    e.visited,
                    if e.truncated { ", truncated" } else { "" },
                    static_n,
                    e.deadlock_free
                );
                if missing == 0 {
                    println!("soundness check PASSED (dynamic ⊆ static)");
                } else {
                    return Err(format!("{missing} dynamic pair(s) missing statically"));
                }
                // The §8 precision probe: the static overapproximation
                // minus the dynamic underapproximation bounds the false
                // positives. Exact when the exploration completed.
                let gap: Vec<(String, String)> = a
                    .mhp()
                    .iter_pairs()
                    .filter(|&(x, y)| !e.mhp.contains(&(x.min(y), x.max(y))))
                    .map(|(x, y)| (p.labels().display(x), p.labels().display(y)))
                    .collect();
                if gap.is_empty() {
                    println!(
                        "precision: static == dynamic — zero false positives{}",
                        if e.truncated { " (on the explored prefix)" } else { "" }
                    );
                } else {
                    println!(
                        "precision gap ({} pair(s) static-only{}):",
                        gap.len(),
                        if e.truncated {
                            " — upper bound, exploration truncated"
                        } else {
                            " — exact false positives"
                        }
                    );
                    for (x, y) in gap {
                        println!("  ({x}, {y})");
                    }
                }
            }
            "x10" => {
                let src =
                    std::fs::read_to_string(target).map_err(|e| format!("{target}: {e}"))?;
                let p = fx10_frontend::parse(&src).map_err(|e| format!("{target}: {e}"))?;
                let mode = if opts.ci {
                    fx10_core::Mode::ContextInsensitive { keep_scross: true }
                } else {
                    fx10_core::Mode::ContextSensitive
                };
                let a = fx10_frontend::analyze_condensed(&p, mode, opts.solver);
                let c = p.node_counts();
                println!(
                    "{} nodes ({} methods), asyncs: {:?}",
                    c.total(),
                    c.method,
                    p.async_stats()
                );
                println!(
                    "constraints S/1/2 = {}/{}/{}, iterations = {}/{}/{}, {:.1} ms",
                    a.stats.slabels_constraints,
                    a.stats.level1_constraints,
                    a.stats.level2_constraints,
                    a.stats.slabels_passes,
                    a.stats.level1_passes,
                    a.stats.level2_passes,
                    a.stats.millis
                );
                let rep = fx10_frontend::async_pairs_condensed(&a);
                println!(
                    "async-body MHP pairs: total={} self={} same={} diff={}",
                    rep.total(),
                    rep.self_pairs,
                    rep.same_method,
                    rep.diff_method
                );
                if opts.places {
                    let places = fx10_frontend::PlaceAssignment::compute(&p);
                    let refined = fx10_frontend::same_place_pairs(&a, &places);
                    println!(
                        "places refinement: {} abstract place(s); {} of {} MHP pairs may contend at one place",
                        places.place_count(),
                        refined.len(),
                        a.mhp().len()
                    );
                }
            }
            "bench" => {
                let names: Vec<&str> = if target == "all" {
                    fx10_suite::SPECS.iter().map(|s| s.name).collect()
                } else {
                    vec![target]
                };
                for name in names {
                    let bm = fx10_suite::benchmark(name)
                        .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
                    let mode = if opts.ci {
                        fx10_core::Mode::ContextInsensitive { keep_scross: true }
                    } else {
                        fx10_core::Mode::ContextSensitive
                    };
                    let a = fx10_frontend::analyze_condensed(&bm.program, mode, opts.solver);
                    let rep = fx10_frontend::async_pairs_condensed(&a);
                    println!(
                        "{:<12} {:>8.1} ms  {:>7.2} MB  iters {}/{}/{}  pairs {}/{}/{}/{}",
                        name,
                        a.stats.millis,
                        a.stats.bytes as f64 / 1e6,
                        a.stats.slabels_passes,
                        a.stats.level1_passes,
                        a.stats.level2_passes,
                        rep.total(),
                        rep.self_pairs,
                        rep.same_method,
                        rep.diff_method
                    );
                }
            }
            _ => return Err(format!("unknown command `{cmd}`")),
        }
        Ok(())
    })();

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
