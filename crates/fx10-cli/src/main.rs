//! `fx10` — command-line driver for the FX10 calculus and its MHP
//! analysis.
//!
//! ```text
//! fx10 parse   <file.fx10>                    check & pretty-print
//! fx10 run     <file.fx10> [--sched S] [--input v,v,...] [--steps N]
//!              [--jobs N [--schedule-seed S] [--grain G] | --elide]  real parallel runtime
//! fx10 explore <file.fx10> [--max-states N] [--jobs N]   exhaustive dynamic MHP
//!              [--checkpoint F [--checkpoint-every N]] [--resume F]
//!              [--shards N [--digest-xor]]          multi-process sharded exploration
//!              [--listen HOST:PORT [--secret-file F] [--reconnects N]]  socket transport
//! fx10 mhp     <file.fx10> [--ci]             static MHP pairs
//! fx10 race    <file.fx10>                    MHP-based race report
//! fx10 lint    <file.fx10> [--format text|json|sarif] [--deny CODE] [--allow CODE]
//!              [--witness-states N] [--input v,v,...] [--domain D]  full diagnostics suite
//! fx10 absint  <file.fx10> [--domain const|interval|parity] [--input v,v,...]
//!              [--format text|json]               abstract value analysis
//! fx10 check   <file.fx10> [--ladder]         soundness: dynamic ⊆ static
//! fx10 x10     <file.x10>  [--ci]             X10-Lite condensed analysis
//! fx10 bench   <name|all>                     run a suite benchmark
//! ```
//!
//! Every command accepts the resource-budget flags `--budget-states`,
//! `--budget-iters` and `--timeout-ms`; a budget-cut run reports its
//! partial result, says which budget tripped, and exits 3. A flag that is
//! meaningless for the given command is a usage error (exit 2), never
//! silently ignored.
//!
//! `explore` and `check` run the work-stealing interned explorer with
//! `--jobs N` worker threads (default: the machine's available
//! parallelism). Results are schedule-independent: every `--jobs` value
//! computes the same states, MHP pairs and verdicts.
//!
//! **Durability.** `explore --checkpoint F` writes a consistent snapshot
//! of the whole exploration (interner, visited set, frontier) to `F`
//! every `--checkpoint-every N` admitted states and once more on exit;
//! `explore --resume F` restarts from such a snapshot and produces
//! byte-identical results to an uninterrupted run. A corrupt or
//! mismatched snapshot is a typed usage error (exit 2). Both explorer
//! commands run under a heartbeat watchdog that converts a wedged worker
//! into a typed stall error (exit 4) instead of a hang. `check --ladder`
//! runs the supervised degradation ladder (sharded explore when `--shards`
//! is given → parallel explore → sequential explore → CS analysis → CI
//! analysis) and reports which rung answered.
//!
//! **Sharding.** `explore --shards N` partitions the visited set by
//! state-digest range across `N` worker *processes* (respawned as
//! `fx10 shard-worker`, an internal mode that speaks length-prefixed
//! FX10SNAP frames on stdin/stdout and is not meant to be run by hand).
//! A `ShardSupervisor` owns the fleet: per-shard heartbeats, backoff
//! restarts of crashed or wedged workers from their last durable
//! checkpoint, and migration of a dead worker's shards (checkpoint plus
//! unacked frontier batches) to a survivor. Results are byte-identical
//! to the single-process explorer at every shard count, faults or not.
//! `--digest-xor` additionally prints an order-independent digest of the
//! visited-state set — the currency of the differential oracle.
//!
//! **Chaos hooks.** The env vars `FX10_KILL_AT_CHECKPOINT`,
//! `FX10_WEDGE_WORKER=k[:after]`, `FX10_STALL_MS`,
//! `FX10_SHARD_KILL=k[:nth-ckpt]`, `FX10_SHARD_WEDGE=k[:after]` and
//! `FX10_SHARD_RESTARTS=N` inject deterministic faults for the chaos
//! harness. They are parsed as strictly as flags and accepted only on
//! the commands that explore (`explore`, `check`); anywhere else they
//! are a usage error (exit 2), never a silent no-op.
//!
//! **Network chaos.** With `--listen` (the socket transport for
//! `explore --shards`), `FX10_NET_DROP=p[:seed]`, `FX10_NET_DUP=p[:seed]`,
//! `FX10_NET_DELAY_MS=n` and `FX10_NET_PARTITION=slot:count` inject
//! deterministic frame loss, duplication, delivery latency and one-way
//! partitions into the supervisor side of every worker link. They follow
//! the same contract as the other hooks — strict parsing, exploring
//! commands only — and additionally require `--listen` (there is no
//! network to break under the default pipe transport).
//!
//! Exit codes:
//!
//! | code | meaning |
//! |------|---------------------------------------------------|
//! | 0    | success, conclusive answer                        |
//! | 1    | analysis error (parse / validation / io / unsound)|
//! | 2    | usage error / invalid snapshot                    |
//! | 3    | budget exhausted — result partial / inconclusive  |
//! | 4    | cancelled, or a worker thread panicked or stalled |
//!
//! `lint` layers the diagnostic suite from `fx10-lints` on the same
//! contract: `--deny CODE` exits 1 when any matching finding survives
//! `--allow` filtering (a denied finding outranks a budget-cut exit 3);
//! selectors match exact codes, dash-boundary groups (`race` matches
//! `race-write-write`), or `all`. Unknown selectors are usage errors.

use fx10_core::{analyze_with_budget, analyze_with_fallback, AnalysisPath, Supervisor};
use fx10_robust::{Budget, CancelToken, Exhaustion, FaultPlan, Fx10Error, PanicFault};
use fx10_semantics::{
    explore_parallel_durable, run_budgeted, CheckpointSpec, Durability, ExploreConfig,
    ExplorerSnapshot, Scheduler, WatchdogSpec,
};
use fx10_syntax::Program;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fx10 <parse|run|explore|mhp|race|lint|absint|check|x10|bench> <file|name> [options]\n\
         options:\n\
           --sched <leftmost|rightmost|random[:seed]>   semantics-stepper scheduler (run)\n\
           --input v,v,...                              initial array (run/explore/check)\n\
           --steps N                                    step budget (run)\n\
           --max-states N                               exploration cap (explore/check)\n\
           --jobs N                                     worker threads (run/explore/check)\n\
           --schedule-seed S                            work-stealing victim order seed (run)\n\
           --grain N                                    inline asyncs of <= N instructions (run)\n\
           --elide                                      sequential-elision oracle run (run)\n\
           --checkpoint <file>                          durable snapshot file (explore)\n\
           --checkpoint-every N                         states between snapshots (explore)\n\
           --resume <file>                              resume from a snapshot (explore)\n\
           --shards N                                   worker processes for sharded exploration (explore/check)\n\
           --digest-xor                                 print the visited-set digest (explore)\n\
           --listen HOST:PORT                           socket transport for the shard fleet (explore)\n\
           --secret-file <file>                         shared handshake secret for socket workers (explore)\n\
           --reconnects N                               reconnect budget per connection drop (explore)\n\
           --ladder                                     supervised degradation ladder (check)\n\
           --format <text|json|sarif>                   lint report format (lint)\n\
           --deny <code>                                exit 1 on matching findings (lint)\n\
           --allow <code>                               suppress matching findings (lint)\n\
           --witness-states N                           witness search cap, 0 = off (lint)\n\
           --domain <const|interval|parity>             abstract domain (absint/lint/race)\n\
           --ci                                         context-insensitive analysis\n\
           --solver <naive|worklist|scc|scc-par>        fixed-point algorithm\n\
           --places                                     same-place MHP refinement (x10)\n\
           --budget-states N                            distinct-state budget (exit 3 when cut)\n\
           --budget-iters N                             solver constraint-evaluation budget\n\
           --timeout-ms N                               wall-clock budget for the command\n\
           --fallback-ci                                degrade CS -> CI when the budget trips (mhp)\n\
         exit codes: 0 ok, 1 analysis error, 2 usage/bad snapshot, 3 budget exhausted,\n\
                     4 cancelled/panicked/stalled"
    );
    ExitCode::from(2)
}

/// Output format for `fx10 lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LintFormat {
    Text,
    Json,
    Sarif,
}

struct Opts {
    sched: Scheduler,
    input: Vec<i64>,
    /// True when `--input` appeared: the value analysis then runs over
    /// the exact abstracted input instead of `⊤`.
    input_set: bool,
    domain: fx10_absint::Domain,
    steps: u64,
    max_states: usize,
    jobs: usize,
    ci: bool,
    solver: fx10_core::analysis::SolverKind,
    places: bool,
    budget_states: Option<usize>,
    budget_iters: Option<u64>,
    timeout_ms: Option<u64>,
    fallback_ci: bool,
    checkpoint: Option<String>,
    checkpoint_every: usize,
    resume: Option<String>,
    ladder: bool,
    format: LintFormat,
    deny: Vec<String>,
    allow: Vec<String>,
    witness_states: usize,
    /// `FX10_KILL_AT_CHECKPOINT` — simulate a process kill right after
    /// the Nth durable checkpoint (the chaos harness's SIGKILL stand-in).
    kill_at: Option<u64>,
    /// `FX10_WEDGE_WORKER=k[:after]` — wedge explorer worker `k` after
    /// `after` processed states (watchdog fault injection).
    wedge: Option<PanicFault>,
    /// `FX10_STALL_MS` — override the 10 s watchdog stall threshold.
    stall_ms: Option<u64>,
    /// `--shards N` — run the exploration across N worker processes.
    shards: Option<usize>,
    /// `--digest-xor` — print an order-independent digest of the
    /// visited-state set (collects every state's rendering).
    digest_xor: bool,
    /// `FX10_SHARD_KILL=k[:n]` — shard worker `k` exits abruptly (no
    /// ack, no result) right after writing its n-th checkpoint.
    shard_kill: Option<(u32, u32)>,
    /// `FX10_SHARD_WEDGE=k[:after]` — shard worker `k` goes silent after
    /// expanding `after` states.
    shard_wedge: Option<(u32, u64)>,
    /// `FX10_SHARD_RESTARTS=N` — override the per-worker restart budget
    /// (0 forces immediate migration on the first death).
    shard_restarts: Option<u32>,
    /// `--listen HOST:PORT` — run the shard fleet over loopback TCP
    /// instead of stdio pipes (port 0 lets the OS pick).
    listen: Option<std::net::SocketAddr>,
    /// `--secret-file F` — shared secret authenticating socket workers.
    secret_file: Option<PathBuf>,
    /// `--reconnects N` — reconnect budget per connection drop.
    reconnects: Option<u32>,
    /// `FX10_NET_*` — deterministic network-fault injection on the
    /// socket transport (drop/dup/delay/partition).
    net_chaos: fx10_robust::conn::NetChaos,
    /// True when any of `--jobs`/`--schedule-seed`/`--grain` appeared on
    /// `run`: dispatch to the real work-stealing runtime instead of the
    /// semantics stepper.
    use_runtime: bool,
    /// `--schedule-seed S` — seeds the runtime's stealing order.
    schedule_seed: Option<u64>,
    /// `--grain N` — inline `async` bodies of at most N instructions.
    grain: usize,
    /// `--elide` — run the sequential-elision oracle engine.
    elide: bool,
}

impl Opts {
    /// The resource budget requested on the command line.
    fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(n) = self.budget_states {
            b = b.with_max_states(n);
        }
        if let Some(n) = self.budget_iters {
            b = b.with_max_iters(n);
        }
        if let Some(ms) = self.timeout_ms {
            b = b.with_timeout(Duration::from_millis(ms));
        }
        b
    }

    fn mode(&self) -> fx10_core::Mode {
        if self.ci {
            fx10_core::Mode::ContextInsensitive { keep_scross: true }
        } else {
            fx10_core::Mode::ContextSensitive
        }
    }

    fn checkpoint_spec(&self) -> Option<CheckpointSpec> {
        self.checkpoint.as_ref().map(|p| CheckpointSpec {
            path: PathBuf::from(p),
            every: self.checkpoint_every,
        })
    }

    /// The explorer watchdog: 10 s stall threshold by default,
    /// `FX10_STALL_MS` for tests that need a fast trigger. Polling scales
    /// with the threshold so short thresholds are detected promptly.
    fn watchdog(&self) -> WatchdogSpec {
        let stall_ms = self.stall_ms.unwrap_or(10_000);
        WatchdogSpec {
            stall_after: Duration::from_millis(stall_ms),
            poll: Duration::from_millis((stall_ms / 10).clamp(5, 50)),
        }
    }

    /// The fault plan assembled from the chaos-testing env hooks.
    fn faults(&self) -> FaultPlan {
        FaultPlan {
            wedge_worker: self.wedge,
            kill_at_checkpoint: self.kill_at,
            ..FaultPlan::none()
        }
    }

    /// The sharded-exploration configuration: this binary re-invoked as
    /// `fx10 shard-worker`, per-slot checkpoints under `--checkpoint`
    /// (treated as a directory) or a per-process temp dir, and the chaos
    /// env hooks mapped onto the fleet.
    fn sharded_options(&self) -> Result<fx10_semantics::ShardedOptions, Fx10Error> {
        let worker_exe = std::env::current_exe().map_err(|e| Fx10Error::Io {
            path: "<current-exe>".to_string(),
            message: e.to_string(),
        })?;
        let ckpt_dir = match &self.checkpoint {
            Some(dir) => PathBuf::from(dir),
            None => std::env::temp_dir().join(format!("fx10-shards-{}", std::process::id())),
        };
        let wd = self.watchdog();
        Ok(fx10_semantics::ShardedOptions {
            shards: self.shards.unwrap_or(1),
            worker_exe,
            worker_args: vec!["shard-worker".to_string()],
            ckpt_dir,
            ckpt_every: self.checkpoint_every as u64,
            policy: fx10_robust::backoff::RestartPolicy {
                max_restarts: self.shard_restarts.unwrap_or(2),
                ..fx10_robust::backoff::RestartPolicy::default()
            },
            stall_after: wd.stall_after,
            poll: wd.poll,
            deadline: self.timeout_ms.map(Duration::from_millis),
            collect: self.digest_xor,
            chaos_kill: self.shard_kill,
            chaos_wedge: self.shard_wedge,
            listen: self.listen,
            secret_file: self.secret_file.clone(),
            reconnects: self.reconnects.unwrap_or(5),
            net_chaos: self.net_chaos,
        })
    }
}

/// The explorer summary shared by the single-process and sharded paths —
/// identical stdout modulo the leading `jobs:`/`shards:` line, which is
/// what lets the chaos harness diff a faulted sharded run against the
/// sequential reference.
fn print_exploration(p: &Program, e: &fx10_semantics::Exploration, digest_xor: bool) {
    println!(
        "{} state(s) visited{}, {} terminal(s), deadlock-free: {}",
        e.visited,
        match e.exhausted {
            Some(x) => format!(" (truncated: {x} exhausted)"),
            None => String::new(),
        },
        e.terminals,
        e.deadlock_free
    );
    println!("dynamic MHP pairs ({}):", e.mhp.len());
    for &(a, b) in &e.mhp {
        println!("  ({}, {})", p.labels().display(a), p.labels().display(b));
    }
    if digest_xor {
        let set = e.state_digests.as_ref();
        let n = set.map_or(0, |s| s.len());
        let xor = set.map_or(0u64, |s| {
            s.iter().fold(0u64, |x, d| {
                x ^ fx10_robust::snapshot::fnv1a64(d.as_bytes())
            })
        });
        println!("digest-xor: {xor:016x} over {n} state(s)");
    }
}

/// The shared tail of the runtime `run` paths. Deliberately identical
/// across engines — only the leading `runtime:` banner names the engine
/// and its knobs — so the CI elision oracle can diff a parallel run
/// against the serial one with `grep -v '^runtime:'` and demand byte
/// identity for race-free programs.
fn print_run_report(p: &Program, banner: &str, out: &fx10_runtime::RunReport) {
    println!("runtime: {banner}");
    if out.completed {
        println!("completed in {} steps", out.steps);
    } else if let Some(e) = out.exhausted {
        println!("{e} exhausted after {} steps", out.steps);
    }
    println!("a = {:?}", out.array);
    println!("result a[0] = {}", out.array.first().copied().unwrap_or(0));
    if out.races.is_empty() {
        println!("races: none");
    } else {
        println!("races: {} pair(s) observed:", out.races.len());
        for r in &out.races {
            println!(
                "  ({}, {}) on a[{}]",
                p.labels().display(r.pair.0),
                p.labels().display(r.pair.1),
                r.cell
            );
        }
    }
}

/// Parses the option tail, returning the options plus the list of flags
/// that actually appeared (for the per-command validity audit).
fn parse_opts(args: &[String]) -> Result<(Opts, Vec<&'static str>), String> {
    let mut o = Opts {
        sched: Scheduler::Leftmost,
        input: vec![],
        input_set: false,
        domain: fx10_absint::Domain::Interval,
        steps: 1_000_000,
        max_states: 200_000,
        jobs: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ci: false,
        solver: fx10_core::analysis::SolverKind::Naive,
        places: false,
        budget_states: None,
        budget_iters: None,
        timeout_ms: None,
        fallback_ci: false,
        checkpoint: None,
        checkpoint_every: 1024,
        resume: None,
        ladder: false,
        format: LintFormat::Text,
        deny: vec![],
        allow: vec![],
        witness_states: 10_000,
        kill_at: None,
        wedge: None,
        stall_ms: None,
        shards: None,
        digest_xor: false,
        shard_kill: None,
        shard_wedge: None,
        shard_restarts: None,
        listen: None,
        secret_file: None,
        reconnects: None,
        net_chaos: fx10_robust::conn::NetChaos::default(),
        use_runtime: false,
        schedule_seed: None,
        grain: 0,
        elide: false,
    };
    let mut seen: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        // Record every flag spelling we recognize below; unknown ones
        // fall through to the final match arm's error.
        if let Some(known) = KNOWN_FLAGS.iter().find(|k| **k == args[i]) {
            seen.push(known);
        }
        match args[i].as_str() {
            "--sched" => {
                i += 1;
                let v = args.get(i).ok_or("--sched needs a value")?;
                o.sched = match v.split(':').collect::<Vec<_>>().as_slice() {
                    ["leftmost"] => Scheduler::Leftmost,
                    ["rightmost"] => Scheduler::Rightmost,
                    ["random"] => Scheduler::Random(0xf10),
                    ["random", seed] => Scheduler::Random(seed.parse().map_err(|_| "bad seed")?),
                    _ => return Err(format!("unknown scheduler `{v}`")),
                };
            }
            "--input" => {
                i += 1;
                let v = args.get(i).ok_or("--input needs a value")?;
                // Strict: every comma-separated segment must be an
                // integer. An empty segment (`1,,2`, a trailing comma, or
                // an empty value) is a usage error, not a silent skip.
                o.input = v
                    .split(',')
                    .map(|s| {
                        let t = s.trim();
                        t.parse().map_err(|_| {
                            format!(
                                "bad --input segment `{t}` in `{v}` \
                                 (expected comma-separated integers)"
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
                o.input_set = true;
            }
            "--steps" => {
                i += 1;
                o.steps = args
                    .get(i)
                    .ok_or("--steps needs a value")?
                    .parse()
                    .map_err(|_| "bad step count")?;
            }
            "--max-states" => {
                i += 1;
                o.max_states = args
                    .get(i)
                    .ok_or("--max-states needs a value")?
                    .parse()
                    .map_err(|_| "bad state count")?;
            }
            "--jobs" => {
                i += 1;
                o.jobs = args
                    .get(i)
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|_| "bad job count")?;
                if o.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--budget-states" => {
                i += 1;
                o.budget_states = Some(
                    args.get(i)
                        .ok_or("--budget-states needs a value")?
                        .parse()
                        .map_err(|_| "bad state budget")?,
                );
            }
            "--budget-iters" => {
                i += 1;
                o.budget_iters = Some(
                    args.get(i)
                        .ok_or("--budget-iters needs a value")?
                        .parse()
                        .map_err(|_| "bad iteration budget")?,
                );
            }
            "--timeout-ms" => {
                i += 1;
                o.timeout_ms = Some(
                    args.get(i)
                        .ok_or("--timeout-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad timeout")?,
                );
            }
            "--checkpoint" => {
                i += 1;
                o.checkpoint = Some(args.get(i).ok_or("--checkpoint needs a value")?.clone());
            }
            "--checkpoint-every" => {
                i += 1;
                o.checkpoint_every = args
                    .get(i)
                    .ok_or("--checkpoint-every needs a value")?
                    .parse()
                    .map_err(|_| "bad checkpoint interval")?;
                if o.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be at least 1".to_string());
                }
            }
            "--resume" => {
                i += 1;
                o.resume = Some(args.get(i).ok_or("--resume needs a value")?.clone());
            }
            "--format" => {
                i += 1;
                let v = args.get(i).ok_or("--format needs a value")?;
                o.format = match v.as_str() {
                    "text" => LintFormat::Text,
                    "json" => LintFormat::Json,
                    "sarif" => LintFormat::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--deny" | "--allow" => {
                let flag = args[i].clone();
                i += 1;
                let v = args.get(i).ok_or_else(|| format!("{flag} needs a value"))?;
                for sel in v.split(',').filter(|s| !s.is_empty()) {
                    if !fx10_lints::selector_is_known(sel) {
                        return Err(format!(
                            "unknown rule selector `{sel}` (see `fx10 lint` rules: {})",
                            fx10_lints::RULES
                                .iter()
                                .map(|r| r.code)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                    if flag == "--deny" {
                        o.deny.push(sel.to_string());
                    } else {
                        o.allow.push(sel.to_string());
                    }
                }
            }
            "--domain" => {
                i += 1;
                let v = args.get(i).ok_or("--domain needs a value")?;
                o.domain = fx10_absint::Domain::parse(v).ok_or_else(|| {
                    format!("unknown domain `{v}` (expected const, interval, or parity)")
                })?;
            }
            "--witness-states" => {
                i += 1;
                o.witness_states = args
                    .get(i)
                    .ok_or("--witness-states needs a value")?
                    .parse()
                    .map_err(|_| "bad witness state count")?;
            }
            "--shards" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "bad shard count")?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                o.shards = Some(n);
            }
            "--listen" => {
                i += 1;
                let v = args.get(i).ok_or("--listen needs a value")?;
                o.listen = Some(v.parse().map_err(|_| {
                    format!("bad --listen address `{v}` (expected HOST:PORT, e.g. 127.0.0.1:0)")
                })?);
            }
            "--secret-file" => {
                i += 1;
                o.secret_file = Some(PathBuf::from(
                    args.get(i).ok_or("--secret-file needs a value")?,
                ));
            }
            "--reconnects" => {
                i += 1;
                o.reconnects = Some(
                    args.get(i)
                        .ok_or("--reconnects needs a value")?
                        .parse()
                        .map_err(|_| "bad reconnect budget")?,
                );
            }
            "--connect" => {
                // Recognized so the audit can say "not valid for `cmd`"
                // instead of "unknown option": it belongs to the hidden
                // `shard-worker` mode, which parses its own tail.
                i += 1;
                args.get(i).ok_or("--connect needs a value")?;
            }
            "--schedule-seed" => {
                i += 1;
                o.schedule_seed = Some(
                    args.get(i)
                        .ok_or("--schedule-seed needs a value")?
                        .parse()
                        .map_err(|_| "bad schedule seed")?,
                );
            }
            "--grain" => {
                i += 1;
                o.grain = args
                    .get(i)
                    .ok_or("--grain needs a value")?
                    .parse()
                    .map_err(|_| "bad grain")?;
            }
            "--elide" => o.elide = true,
            "--digest-xor" => o.digest_xor = true,
            "--ladder" => o.ladder = true,
            "--fallback-ci" => o.fallback_ci = true,
            "--ci" => o.ci = true,
            "--places" => o.places = true,
            "--solver" => {
                i += 1;
                let v = args.get(i).ok_or("--solver needs a value")?;
                o.solver = match v.as_str() {
                    "naive" => fx10_core::analysis::SolverKind::Naive,
                    "worklist" => fx10_core::analysis::SolverKind::Worklist,
                    "scc" => fx10_core::analysis::SolverKind::Scc,
                    "scc-par" => fx10_core::analysis::SolverKind::SccParallel(
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(4),
                    ),
                    other => return Err(format!("unknown solver `{other}`")),
                };
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if o.checkpoint.is_none() && seen.contains(&"--checkpoint-every") && o.shards.is_none() {
        return Err("--checkpoint-every requires --checkpoint or --shards".to_string());
    }
    if seen.contains(&"--shards") && seen.contains(&"--resume") {
        return Err(
            "--resume resumes a single-process snapshot; sharded runs resume themselves \
             from their per-shard checkpoints"
                .to_string(),
        );
    }
    if o.listen.is_some() && o.shards.is_none() {
        return Err(
            "--listen selects the socket transport for the shard fleet; it requires --shards"
                .to_string(),
        );
    }
    if o.secret_file.is_some() && o.listen.is_none() {
        return Err("--secret-file authenticates socket workers; it requires --listen".to_string());
    }
    if o.reconnects.is_some() && o.listen.is_none() {
        return Err(
            "--reconnects budgets socket reconnections; it requires --listen".to_string(),
        );
    }
    Ok((o, seen))
}

/// Every flag [`parse_opts`] understands, for the seen-flag audit.
const KNOWN_FLAGS: &[&str] = &[
    "--sched",
    "--input",
    "--steps",
    "--max-states",
    "--jobs",
    "--checkpoint",
    "--checkpoint-every",
    "--resume",
    "--shards",
    "--digest-xor",
    "--listen",
    "--connect",
    "--secret-file",
    "--reconnects",
    "--schedule-seed",
    "--grain",
    "--elide",
    "--ladder",
    "--format",
    "--deny",
    "--allow",
    "--witness-states",
    "--domain",
    "--fallback-ci",
    "--ci",
    "--places",
    "--solver",
    "--budget-states",
    "--budget-iters",
    "--timeout-ms",
];

/// The flags each command accepts (the resource budgets are global).
/// Anything outside the command's row is reported as a usage error
/// instead of being silently ignored — `fx10 mhp f --jobs 8` means the
/// user thinks `mhp` is parallel, and pretending to obey would mislead.
fn allowed_flags(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "parse" => &[],
        "run" => &[
            "--sched",
            "--steps",
            "--input",
            "--jobs",
            "--schedule-seed",
            "--grain",
            "--elide",
        ],
        "explore" => &[
            "--input",
            "--max-states",
            "--jobs",
            "--checkpoint",
            "--checkpoint-every",
            "--resume",
            "--shards",
            "--digest-xor",
            "--listen",
            "--secret-file",
            "--reconnects",
        ],
        "mhp" => &["--ci", "--solver", "--fallback-ci"],
        "race" => &["--ci", "--solver", "--domain", "--input"],
        "lint" => &[
            "--input",
            "--format",
            "--deny",
            "--allow",
            "--witness-states",
            "--solver",
            "--domain",
        ],
        "absint" => &["--input", "--domain", "--format", "--solver"],
        "check" => &[
            "--max-states",
            "--jobs",
            "--solver",
            "--input",
            "--ladder",
            "--shards",
            "--checkpoint",
            "--checkpoint-every",
        ],
        "x10" => &["--ci", "--solver", "--places"],
        "bench" => &["--ci", "--solver"],
        _ => &[],
    }
}

/// Rejects flags that are valid in general but meaningless for `cmd`.
/// The budget trio is global; everything else must be in the command's
/// [`allowed_flags`] row.
fn validate_flags(cmd: &str, seen: &[&'static str]) -> Result<(), String> {
    const GLOBAL: &[&str] = &["--budget-states", "--budget-iters", "--timeout-ms"];
    let allowed = allowed_flags(cmd);
    for flag in seen {
        if !GLOBAL.contains(flag) && !allowed.contains(flag) {
            return Err(format!("`{flag}` is not valid for `{cmd}`"));
        }
    }
    Ok(())
}

/// Chaos-testing hooks, env-var driven so the e2e harness can inject
/// faults through an unmodified binary. Values are parsed as strictly as
/// command-line flags: garbage is a usage error, not a silent no-op.
///
/// The hooks steer the explorer's fault plan, watchdog and shard fleet,
/// so they are only meaningful on the commands that explore (`explore`,
/// `check`). Anywhere else — including the real runtime behind
/// `fx10 run --jobs` — a set hook is rejected (exit 2): a chaos harness
/// that exports `FX10_KILL_AT_CHECKPOINT` around `fx10 mhp` or
/// `fx10 run` believes it is injecting faults, and silently ignoring it
/// would turn every such run into a false "survived the fault" result.
/// (The runtime's own panic isolation is fault-injected through the
/// library [`FaultPlan`], exercised by the workspace test suite.)
fn env_hooks(o: &mut Opts, cmd: &str) -> Result<(), String> {
    fn var(name: &str) -> Result<Option<String>, String> {
        match std::env::var_os(name) {
            None => Ok(None),
            Some(v) => v
                .into_string()
                .map(Some)
                .map_err(|_| format!("{name} must be UTF-8")),
        }
    }
    let explores = matches!(cmd, "explore" | "check");
    if !explores {
        const HOOKS: &[&str] = &[
            "FX10_KILL_AT_CHECKPOINT",
            "FX10_WEDGE_WORKER",
            "FX10_STALL_MS",
            "FX10_SHARD_KILL",
            "FX10_SHARD_WEDGE",
            "FX10_SHARD_RESTARTS",
            "FX10_NET_DROP",
            "FX10_NET_DUP",
            "FX10_NET_DELAY_MS",
            "FX10_NET_PARTITION",
        ];
        for name in HOOKS {
            if var(name)?.is_some() {
                return Err(format!(
                    "{name} only applies to commands that explore (explore, check); \
                     unset it to run `{cmd}`"
                ));
            }
        }
        return Ok(());
    }
    if let Some(v) = var("FX10_SHARD_KILL")? {
        let (worker, nth) = match v.split_once(':') {
            Some((w, n)) => (
                w.parse()
                    .map_err(|_| format!("bad FX10_SHARD_KILL worker `{w}`"))?,
                n.parse()
                    .map_err(|_| format!("bad FX10_SHARD_KILL checkpoint `{n}`"))?,
            ),
            None => (
                v.parse()
                    .map_err(|_| format!("bad FX10_SHARD_KILL `{v}`"))?,
                1,
            ),
        };
        if nth == 0 {
            return Err("FX10_SHARD_KILL checkpoint is 1-based; must be >= 1".to_string());
        }
        o.shard_kill = Some((worker, nth));
    }
    if let Some(v) = var("FX10_SHARD_WEDGE")? {
        let (worker, after) = match v.split_once(':') {
            Some((w, a)) => (
                w.parse()
                    .map_err(|_| format!("bad FX10_SHARD_WEDGE worker `{w}`"))?,
                a.parse()
                    .map_err(|_| format!("bad FX10_SHARD_WEDGE threshold `{a}`"))?,
            ),
            None => (
                v.parse()
                    .map_err(|_| format!("bad FX10_SHARD_WEDGE `{v}`"))?,
                0,
            ),
        };
        o.shard_wedge = Some((worker, after));
    }
    if let Some(v) = var("FX10_SHARD_RESTARTS")? {
        o.shard_restarts = Some(
            v.parse()
                .map_err(|_| format!("bad FX10_SHARD_RESTARTS `{v}`"))?,
        );
    }
    if let Some(v) = var("FX10_KILL_AT_CHECKPOINT")? {
        let n: u64 = v
            .parse()
            .map_err(|_| format!("bad FX10_KILL_AT_CHECKPOINT `{v}`"))?;
        if n == 0 {
            return Err("FX10_KILL_AT_CHECKPOINT is 1-based; must be >= 1".to_string());
        }
        o.kill_at = Some(n);
    }
    if let Some(v) = var("FX10_WEDGE_WORKER")? {
        let (worker, after) = match v.split_once(':') {
            Some((w, a)) => (
                w.parse()
                    .map_err(|_| format!("bad FX10_WEDGE_WORKER worker `{w}`"))?,
                a.parse()
                    .map_err(|_| format!("bad FX10_WEDGE_WORKER threshold `{a}`"))?,
            ),
            None => (
                v.parse()
                    .map_err(|_| format!("bad FX10_WEDGE_WORKER `{v}`"))?,
                0,
            ),
        };
        o.wedge = Some(PanicFault {
            worker,
            after_states: after,
        });
    }
    if let Some(v) = var("FX10_STALL_MS")? {
        let n: u64 = v.parse().map_err(|_| format!("bad FX10_STALL_MS `{v}`"))?;
        if n == 0 {
            return Err("FX10_STALL_MS must be >= 1".to_string());
        }
        o.stall_ms = Some(n);
    }
    // `p[:seed]` — a percentage in 0..=100 plus an optional chaos seed.
    fn pct_seed(name: &str, v: &str) -> Result<(u8, Option<u64>), String> {
        let (p, seed) = match v.split_once(':') {
            Some((p, s)) => (
                p,
                Some(s.parse().map_err(|_| format!("bad {name} seed `{s}`"))?),
            ),
            None => (v, None),
        };
        let pct: u8 = p
            .parse()
            .map_err(|_| format!("bad {name} percentage `{p}`"))?;
        if pct > 100 {
            return Err(format!("{name} percentage must be 0..=100, got {pct}"));
        }
        Ok((pct, seed))
    }
    let mut net_hook = None;
    let mut net_seed: Option<u64> = None;
    if let Some(v) = var("FX10_NET_DROP")? {
        net_hook = Some("FX10_NET_DROP");
        let (pct, seed) = pct_seed("FX10_NET_DROP", &v)?;
        o.net_chaos.drop_pct = pct;
        net_seed = net_seed.or(seed);
    }
    if let Some(v) = var("FX10_NET_DUP")? {
        net_hook = Some("FX10_NET_DUP");
        let (pct, seed) = pct_seed("FX10_NET_DUP", &v)?;
        o.net_chaos.dup_pct = pct;
        // FX10_NET_DROP's seed wins when both carry one.
        net_seed = net_seed.or(seed);
    }
    if let Some(v) = var("FX10_NET_DELAY_MS")? {
        net_hook = Some("FX10_NET_DELAY_MS");
        o.net_chaos.delay_ms = v
            .parse()
            .map_err(|_| format!("bad FX10_NET_DELAY_MS `{v}`"))?;
    }
    if let Some(v) = var("FX10_NET_PARTITION")? {
        net_hook = Some("FX10_NET_PARTITION");
        let (slot, count) = v
            .split_once(':')
            .ok_or_else(|| format!("bad FX10_NET_PARTITION `{v}` (expected slot:count)"))?;
        o.net_chaos.partition = Some((
            slot.parse()
                .map_err(|_| format!("bad FX10_NET_PARTITION slot `{slot}`"))?,
            count
                .parse()
                .map_err(|_| format!("bad FX10_NET_PARTITION count `{count}`"))?,
        ));
    }
    if let Some(s) = net_seed {
        o.net_chaos.seed = s;
    }
    if let Some(name) = net_hook {
        if o.listen.is_none() {
            return Err(format!(
                "{name} injects faults into the socket transport; it requires \
                 `explore --shards N --listen HOST:PORT`"
            ));
        }
    }
    Ok(())
}

fn load(path: &str) -> Result<Program, Fx10Error> {
    let src = std::fs::read_to_string(path).map_err(|e| Fx10Error::Io {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    Program::parse(&src).map_err(|e| Fx10Error::Parse {
        line: e.line,
        message: e.message,
    })
}

/// What a command run concluded. `Inconclusive` means a budget cut the
/// computation short: the printed result is partial and the process exits
/// with code 3 so scripts can tell "no race found" from "ran out of gas".
enum Verdict {
    Conclusive,
    Inconclusive(Exhaustion),
}

impl Verdict {
    fn of(exhausted: Option<Exhaustion>) -> Self {
        match exhausted {
            Some(e) => Verdict::Inconclusive(e),
            None => Verdict::Conclusive,
        }
    }
}

fn run_command(cmd: &str, target: &str, opts: &Opts) -> Result<Verdict, Fx10Error> {
    let budget = opts.budget();
    let cancel = CancelToken::new();
    match cmd {
        "parse" => {
            let p = load(target)?;
            println!(
                "{} method(s), {} instruction(s), array length {}",
                p.method_count(),
                p.label_count(),
                p.array_len()
            );
            print!("{}", fx10_syntax::pretty::program(&p));
            Ok(Verdict::Conclusive)
        }
        "run" if opts.elide => {
            let p = load(target)?;
            let out = fx10_runtime::run_elision(&p, &opts.input, opts.steps, budget, &cancel)?;
            print_run_report(&p, "sequential elision (serial oracle run)", &out);
            Ok(Verdict::of(out.exhausted))
        }
        "run" if opts.use_runtime => {
            let p = load(target)?;
            let cfg = fx10_runtime::RtConfig {
                jobs: opts.jobs,
                seed: opts.schedule_seed.unwrap_or(0),
                grain: opts.grain,
                max_steps: opts.steps,
            };
            let out =
                fx10_runtime::run_parallel(&p, &opts.input, &cfg, budget, &cancel, &opts.faults())?;
            print_run_report(
                &p,
                &format!(
                    "work-stealing crew, {} worker(s), schedule seed {}, grain {}",
                    cfg.jobs, cfg.seed, cfg.grain
                ),
                &out,
            );
            Ok(Verdict::of(out.exhausted))
        }
        "run" => {
            let p = load(target)?;
            let out = run_budgeted(
                &p,
                &opts.input,
                opts.sched.clone(),
                opts.steps,
                budget,
                &cancel,
            )?;
            if out.completed {
                println!("completed in {} steps", out.steps);
            } else if let Some(e) = out.exhausted {
                println!("{e} exhausted after {} steps", out.steps);
            }
            println!("a = {:?}", out.array.cells());
            println!("result a[0] = {}", out.array.result());
            Ok(Verdict::of(out.exhausted))
        }
        "explore" if opts.shards.is_some() => {
            let p = load(target)?;
            let (e, prov) = fx10_semantics::explore_sharded(
                &p,
                &opts.input,
                &ExploreConfig {
                    max_states: opts.max_states,
                    collect_states: opts.digest_xor,
                    ..ExploreConfig::default()
                },
                &opts.sharded_options()?,
                &cancel,
            )?;
            for ev in &prov.events {
                eprintln!("shards: {ev}");
            }
            println!(
                "shards: {} worker process(es), {} restart(s), {} migration(s)",
                opts.shards.unwrap_or(1),
                prov.restarts,
                prov.migrations
            );
            print_exploration(&p, &e, opts.digest_xor);
            Ok(Verdict::of(e.exhausted))
        }
        "explore" => {
            let p = load(target)?;
            // Load the snapshot before spinning anything up: a corrupt or
            // mismatched file must be a clean typed error (exit 2).
            let resumed = match &opts.resume {
                Some(path) => {
                    let snap = ExplorerSnapshot::load(std::path::Path::new(path))?;
                    eprintln!("resuming from `{path}`");
                    Some(snap)
                }
                None => None,
            };
            let e = explore_parallel_durable(
                &p,
                &opts.input,
                ExploreConfig {
                    max_states: opts.max_states,
                    collect_states: opts.digest_xor,
                    ..ExploreConfig::default()
                },
                opts.jobs,
                budget,
                &cancel,
                &opts.faults(),
                Durability {
                    checkpoint: opts.checkpoint_spec(),
                    resume: resumed.as_ref(),
                    watchdog: Some(opts.watchdog()),
                },
            )?;
            println!("jobs: {} (work-stealing interned explorer)", opts.jobs);
            print_exploration(&p, &e, opts.digest_xor);
            Ok(Verdict::of(e.exhausted))
        }
        "mhp" => {
            let p = load(target)?;
            let a = if opts.fallback_ci && !opts.ci {
                let out = analyze_with_fallback(&p, opts.solver, budget, budget, &cancel)?;
                if out.path == AnalysisPath::ContextInsensitiveFallback {
                    let why = out
                        .cs_exhaustion
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "budget".to_string());
                    println!(
                        "context-sensitive analysis exhausted its {why}; \
                         answering with the context-insensitive over-approximation"
                    );
                }
                out.analysis
            } else {
                analyze_with_budget(&p, opts.mode(), opts.solver, budget, &cancel)?
            };
            println!(
                "{} analysis: {} constraint(s), iterations S/1/2 = {}/{}/{}",
                match a.mode() {
                    fx10_core::Mode::ContextSensitive => "context-sensitive",
                    fx10_core::Mode::ContextInsensitive { .. } => "context-insensitive",
                },
                a.stats.slabels_constraints
                    + a.stats.level1_constraints
                    + a.stats.level2_constraints,
                a.stats.slabels_passes,
                a.stats.level1_passes,
                a.stats.level2_passes
            );
            let pairs = a.pairs_named(&p);
            println!("MHP pairs ({}):", pairs.len());
            for (x, y) in pairs {
                println!("  ({x}, {y})");
            }
            let rep = fx10_core::report::async_pairs(&a);
            print!("{}", fx10_core::report::render_report(&p, &rep));
            // A fallback analysis that *completed* is conclusive (a sound
            // over-approximation); a budget-cut one is not.
            if let Some(e) = a.exhausted {
                println!("INCONCLUSIVE ({e} exhausted) — pair set is partial");
            }
            Ok(Verdict::of(a.exhausted))
        }
        "race" => {
            let p = load(target)?;
            let a = analyze_with_budget(&p, opts.mode(), opts.solver, budget, &cancel)?;
            let races = fx10_core::race::detect_races(&p, &a);
            print!("{}", fx10_core::race::render_races(&p, &races));
            // Value-analysis second opinion on every reported pair: an
            // infeasible pair is called out with its unreachability proof;
            // a surviving pair gets the abstract guard facts a fix would
            // have to change. An unlicensed oracle says so instead of
            // pretending the pairs were vetted.
            if !races.is_empty() {
                let input = opts.input_set.then_some(opts.input.as_slice());
                let oracle = fx10_absint::FeasibilityOracle::build(&p, &a, opts.domain, input);
                if oracle.complete {
                    for r in &races {
                        let (x, y) = (r.first.label, r.second.label);
                        if !oracle.pair_feasible(x, y) {
                            let dead = if oracle.label_feasible(x) { y } else { x };
                            println!(
                                "value-analysis ({}): ({}, {}) is infeasible — {}",
                                oracle.facts.domain(),
                                p.labels().display(x),
                                p.labels().display(y),
                                oracle
                                    .facts
                                    .reason(dead)
                                    .unwrap_or_else(|| "label is unreachable".to_string())
                            );
                        } else {
                            println!(
                                "value-analysis ({}): ({}, {}) stays feasible — {}; {}",
                                oracle.facts.domain(),
                                p.labels().display(x),
                                p.labels().display(y),
                                oracle.facts.guard_fact(x, &p),
                                oracle.facts.guard_fact(y, &p)
                            );
                        }
                    }
                } else {
                    println!(
                        "value-analysis ({}): inconclusive — no pair was vetted for feasibility",
                        oracle.facts.domain()
                    );
                }
            }
            if let Some(e) = a.exhausted {
                println!("INCONCLUSIVE ({e} exhausted) — race report is partial");
            }
            Ok(Verdict::of(a.exhausted))
        }
        "absint" => {
            let p = load(target)?;
            let a = analyze_with_budget(
                &p,
                fx10_core::Mode::ContextSensitive,
                opts.solver,
                budget,
                &cancel,
            )?;
            let input = opts.input_set.then_some(opts.input.as_slice());
            let oracle = fx10_absint::FeasibilityOracle::build(&p, &a, opts.domain, input);
            // Pruning is reported only when licensed; an inconclusive run
            // renders the facts with `"pruning": null` / no pruning block.
            let prune = oracle.complete.then(|| oracle.prune(&a));
            let input_desc = match input {
                Some(i) => format!("{i:?}"),
                None => "top".to_string(),
            };
            match opts.format {
                LintFormat::Text => print!(
                    "{}",
                    fx10_absint::render_text(
                        target,
                        &p,
                        &oracle.facts,
                        prune.as_ref(),
                        &input_desc
                    )
                ),
                LintFormat::Json => print!(
                    "{}",
                    fx10_absint::render_json(
                        target,
                        &p,
                        &oracle.facts,
                        prune.as_ref(),
                        &input_desc
                    )
                ),
                LintFormat::Sarif => unreachable!("rejected in main"),
            }
            Ok(Verdict::of(a.exhausted))
        }
        "lint" => {
            let p = load(target)?;
            let mut report = fx10_lints::lint(
                &p,
                &fx10_lints::LintOptions {
                    input: opts.input.clone(),
                    witness_states: opts.witness_states,
                    solver: opts.solver,
                    budget,
                    domain: opts.domain,
                },
                &cancel,
            )?;
            // `--allow` suppresses before rendering: an allowed finding
            // is invisible everywhere, including to `--deny`.
            if !opts.allow.is_empty() {
                report.diagnostics.retain(|d| {
                    !opts
                        .allow
                        .iter()
                        .any(|s| fx10_lints::selector_matches(s, d.code))
                });
            }
            match opts.format {
                LintFormat::Text => print!("{}", fx10_lints::render_text(target, &report)),
                LintFormat::Json => print!("{}", fx10_lints::render_json(target, &report)),
                LintFormat::Sarif => print!("{}", fx10_lints::render_sarif(target, &report)),
            }
            let denied = report.matching(&opts.deny).count();
            if denied > 0 {
                // Deny outranks inconclusive: a partial analysis that
                // still found a denied defect must fail the build.
                return Err(Fx10Error::Validate(format!(
                    "{denied} finding(s) matched --deny {}",
                    opts.deny.join(",")
                )));
            }
            Ok(Verdict::of(report.exhausted))
        }
        "check" if opts.ladder => {
            let p = load(target)?;
            let wd = opts.watchdog();
            let explore_config = ExploreConfig {
                max_states: opts.max_states,
                ..ExploreConfig::default()
            };
            // `--shards N` puts a sharded-explore rung above the
            // in-process ones: fleet-level faults descend to the
            // parallel explorer, which has its own ladder below it.
            let shard_runner = match opts.shards {
                Some(_) => {
                    let sopts = opts.sharded_options()?;
                    Some(fx10_core::analysis::ShardRunner(std::sync::Arc::new(
                        move |p: &Program, input: &[i64], cancel: &CancelToken| {
                            let (e, prov) = fx10_semantics::explore_sharded(
                                p,
                                input,
                                &explore_config,
                                &sopts,
                                cancel,
                            )?;
                            Ok(fx10_core::analysis::ShardOutcome {
                                pairs: e.mhp,
                                deadlock_free: e.deadlock_free,
                                truncated: e.truncated,
                                exhausted: e.exhausted,
                                events: prov.events,
                                restarts: prov.restarts,
                                migrations: prov.migrations,
                            })
                        },
                    )))
                }
                None => None,
            };
            let sup = Supervisor {
                jobs: opts.jobs,
                budget,
                explore_config,
                solver: opts.solver,
                stall_after: wd.stall_after,
                poll: wd.poll,
                shard_runner,
                ..Supervisor::default()
            };
            let ans = sup.run(&p, &opts.input, &cancel, &opts.faults())?;
            for line in &ans.trace {
                println!("ladder: {line}");
            }
            println!("ladder: answered on rung {}", ans.rung);
            if opts.shards.is_some() {
                println!(
                    "ladder: shard restarts {}, migrations {}",
                    ans.shard_restarts, ans.shard_migrations
                );
            }
            if !ans.rung.is_dynamic() {
                // No dynamic ground truth was obtainable, so Theorem 2
                // cannot be checked — the static pair set is still a
                // sound over-approximation, but the verdict is partial.
                println!(
                    "static rung answered with {} pair(s); soundness not checkable \
                     without a dynamic ground truth",
                    ans.pairs.len()
                );
                println!("INCONCLUSIVE (dynamic exploration infeasible)");
                return Ok(Verdict::Inconclusive(
                    ans.exhausted.unwrap_or(Exhaustion::States),
                ));
            }
            let a = analyze_with_budget(
                &p,
                fx10_core::Mode::ContextSensitive,
                opts.solver,
                budget,
                &cancel,
            )?;
            if let Some(x) = a.exhausted {
                println!("INCONCLUSIVE ({x} exhausted during static analysis)");
                return Ok(Verdict::Inconclusive(x));
            }
            let soundness = a.check_soundness(ans.pairs.iter());
            for &(x, y) in &soundness.missing {
                println!(
                    "UNSOUND: dynamic pair ({}, {}) not in static MHP",
                    p.labels().display(x),
                    p.labels().display(y)
                );
            }
            println!(
                "dynamic pairs: {}, static pairs: {}, deadlock-free: {}",
                ans.pairs.len(),
                soundness.static_pairs,
                ans.deadlock_free.expect("dynamic rung observes Theorem 1")
            );
            if !soundness.is_sound() {
                return Err(Fx10Error::Validate(format!(
                    "{} dynamic pair(s) missing statically",
                    soundness.missing.len()
                )));
            }
            println!("soundness check PASSED (dynamic ⊆ static)");
            Ok(Verdict::Conclusive)
        }
        "check" => {
            let p = load(target)?;
            let a = analyze_with_budget(
                &p,
                fx10_core::Mode::ContextSensitive,
                opts.solver,
                budget,
                &cancel,
            )?;
            let e = explore_parallel_durable(
                &p,
                &opts.input,
                ExploreConfig {
                    max_states: opts.max_states,
                    ..ExploreConfig::default()
                },
                opts.jobs,
                budget,
                &cancel,
                &opts.faults(),
                Durability {
                    checkpoint: None,
                    resume: None,
                    watchdog: Some(opts.watchdog()),
                },
            )?;
            // A budget-cut *static* analysis is an under-approximation, so
            // "dynamic pair missing statically" would be a false alarm:
            // report inconclusive instead of unsound.
            if let Some(x) = a.exhausted {
                println!(
                    "dynamic pairs: {} ({} states), static pairs: {} (partial)",
                    e.mhp.len(),
                    e.visited,
                    a.mhp().len()
                );
                println!("INCONCLUSIVE ({x} exhausted during static analysis)");
                return Ok(Verdict::Inconclusive(x));
            }
            let soundness = a.check_soundness(e.mhp.iter());
            for &(x, y) in &soundness.missing {
                println!(
                    "UNSOUND: dynamic pair ({}, {}) not in static MHP",
                    p.labels().display(x),
                    p.labels().display(y)
                );
            }
            let missing = soundness.missing.len();
            let static_n = soundness.static_pairs;
            println!(
                "dynamic pairs: {} ({} states{}), static pairs: {}, deadlock-free: {}",
                e.mhp.len(),
                e.visited,
                if e.truncated { ", truncated" } else { "" },
                static_n,
                e.deadlock_free
            );
            if missing > 0 {
                return Err(Fx10Error::Validate(format!(
                    "{missing} dynamic pair(s) missing statically"
                )));
            }
            println!("soundness check PASSED (dynamic ⊆ static)");
            // The §8 precision probe: the static overapproximation
            // minus the dynamic underapproximation bounds the false
            // positives. Exact when the exploration completed.
            let gap: Vec<(String, String)> = a
                .mhp()
                .iter_pairs()
                .filter(|&(x, y)| !e.mhp.contains(&(x.min(y), x.max(y))))
                .map(|(x, y)| (p.labels().display(x), p.labels().display(y)))
                .collect();
            if gap.is_empty() {
                println!(
                    "precision: static == dynamic — zero false positives{}",
                    if e.truncated {
                        " (on the explored prefix)"
                    } else {
                        ""
                    }
                );
            } else {
                println!(
                    "precision gap ({} pair(s) static-only{}):",
                    gap.len(),
                    if e.truncated {
                        " — upper bound, exploration truncated"
                    } else {
                        " — exact false positives"
                    }
                );
                for (x, y) in gap {
                    println!("  ({x}, {y})");
                }
            }
            // A truncated exploration proved soundness only on the
            // explored prefix: surface that as inconclusive (exit 3).
            if e.truncated {
                println!("INCONCLUSIVE (state budget exhausted)");
                return Ok(Verdict::Inconclusive(
                    e.exhausted.unwrap_or(Exhaustion::States),
                ));
            }
            Ok(Verdict::Conclusive)
        }
        "x10" => {
            let src = std::fs::read_to_string(target).map_err(|e| Fx10Error::Io {
                path: target.to_string(),
                message: e.to_string(),
            })?;
            let p = fx10_frontend::parse(&src).map_err(|e| Fx10Error::Parse {
                line: e.line,
                message: e.message,
            })?;
            let a = fx10_frontend::analyze_condensed_budgeted(
                &p,
                opts.mode(),
                opts.solver,
                budget,
                &cancel,
            )?;
            let c = p.node_counts();
            println!(
                "{} nodes ({} methods), asyncs: {:?}",
                c.total(),
                c.method,
                p.async_stats()
            );
            println!(
                "constraints S/1/2 = {}/{}/{}, iterations = {}/{}/{}, {:.1} ms",
                a.stats.slabels_constraints,
                a.stats.level1_constraints,
                a.stats.level2_constraints,
                a.stats.slabels_passes,
                a.stats.level1_passes,
                a.stats.level2_passes,
                a.stats.millis
            );
            let rep = fx10_frontend::async_pairs_condensed(&a);
            println!(
                "async-body MHP pairs: total={} self={} same={} diff={}",
                rep.total(),
                rep.self_pairs,
                rep.same_method,
                rep.diff_method
            );
            if opts.places {
                let places = fx10_frontend::PlaceAssignment::compute(&p);
                let refined = fx10_frontend::same_place_pairs(&a, &places);
                println!(
                    "places refinement: {} abstract place(s); {} of {} MHP pairs may contend at one place",
                    places.place_count(),
                    refined.len(),
                    a.mhp().len()
                );
            }
            if let Some(e) = a.exhausted {
                println!("INCONCLUSIVE ({e} exhausted) — pair set is partial");
            }
            Ok(Verdict::of(a.exhausted))
        }
        "bench" => {
            let names: Vec<&str> = if target == "all" {
                fx10_suite::SPECS.iter().map(|s| s.name).collect()
            } else {
                vec![target]
            };
            let mut cut: Option<Exhaustion> = None;
            for name in names {
                let bm = fx10_suite::benchmark(name)
                    .ok_or_else(|| Fx10Error::Validate(format!("unknown benchmark `{name}`")))?;
                let a = fx10_frontend::analyze_condensed_budgeted(
                    &bm.program,
                    opts.mode(),
                    opts.solver,
                    budget,
                    &cancel,
                )?;
                let rep = fx10_frontend::async_pairs_condensed(&a);
                println!(
                    "{:<12} {:>8.1} ms  {:>7.2} MB  iters {}/{}/{}  pairs {}/{}/{}/{}{}",
                    name,
                    a.stats.millis,
                    a.stats.bytes as f64 / 1e6,
                    a.stats.slabels_passes,
                    a.stats.level1_passes,
                    a.stats.level2_passes,
                    rep.total(),
                    rep.self_pairs,
                    rep.same_method,
                    rep.diff_method,
                    match a.exhausted {
                        Some(e) => format!("  [{e} exhausted]"),
                        None => String::new(),
                    }
                );
                if let Some(e) = a.exhausted {
                    cut.get_or_insert(e);
                }
            }
            Ok(Verdict::of(cut))
        }
        other => Err(Fx10Error::Validate(format!("unknown command `{other}`"))),
    }
}

/// The hidden `shard-worker` mode. No arguments: speak FX10SNAP frames
/// on stdin/stdout (spawned over pipes). With arguments: dial the
/// supervisor at `--connect ADDR` as shard `--slot N`, authenticating
/// with `--secret-file F` and re-dialing up to `--reconnects N` times
/// per disconnection. The tail is parsed as strictly as the public
/// commands — an unknown or valueless flag is a usage error (exit 2),
/// because a typo here means the supervisor waits on a worker that never
/// arrives.
fn shard_worker_entry(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return match fx10_semantics::shard_worker_main(std::io::stdin(), std::io::stdout().lock()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("shard-worker: {e}");
                ExitCode::from(e.exit_code())
            }
        };
    }
    let opts = match parse_worker_net_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: fx10 shard-worker --connect HOST:PORT --slot N \
                 [--secret-file <file>] [--reconnects N]"
            );
            return ExitCode::from(2);
        }
    };
    match fx10_semantics::shard_worker_net(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shard-worker: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// Parses the `shard-worker --connect` tail. Kept separate from
/// [`parse_opts`] on purpose: the worker mode is an internal protocol
/// endpoint with four flags, not a public command, and sharing the big
/// option table would let public-only flags leak in.
fn parse_worker_net_args(args: &[String]) -> Result<fx10_semantics::NetWorkerOptions, String> {
    let mut addr: Option<std::net::SocketAddr> = None;
    let mut slot: Option<u32> = None;
    let mut secret_file: Option<PathBuf> = None;
    let mut reconnects: u32 = 5;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => {
                i += 1;
                let v = args.get(i).ok_or("--connect needs a value")?;
                addr = Some(v.parse().map_err(|_| {
                    format!("bad --connect address `{v}` (expected HOST:PORT)")
                })?);
            }
            "--slot" => {
                i += 1;
                slot = Some(
                    args.get(i)
                        .ok_or("--slot needs a value")?
                        .parse()
                        .map_err(|_| "bad slot")?,
                );
            }
            "--secret-file" => {
                i += 1;
                secret_file = Some(PathBuf::from(
                    args.get(i).ok_or("--secret-file needs a value")?,
                ));
            }
            "--reconnects" => {
                i += 1;
                reconnects = args
                    .get(i)
                    .ok_or("--reconnects needs a value")?
                    .parse()
                    .map_err(|_| "bad reconnect budget")?;
            }
            other => return Err(format!("unknown shard-worker option `{other}`")),
        }
        i += 1;
    }
    let addr = addr.ok_or("shard-worker net mode requires --connect")?;
    let slot = slot.ok_or("shard-worker net mode requires --slot")?;
    let secret = match secret_file {
        Some(p) => {
            let mut bytes = std::fs::read(&p)
                .map_err(|e| format!("cannot read secret file `{}`: {e}", p.display()))?;
            while bytes.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
                bytes.pop();
            }
            bytes
        }
        None => Vec::new(),
    };
    Ok(fx10_semantics::NetWorkerOptions {
        addr,
        slot,
        secret,
        reconnects,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    if cmd == "shard-worker" {
        // Internal protocol mode spawned by `explore --shards`: the frame
        // channel is stdin/stdout (pipe mode, no arguments) or a TCP
        // connection back to the supervisor (`--connect`), so nothing
        // human-readable is printed on stdout; diagnostics go to stderr
        // (inherited from the parent).
        return shard_worker_entry(rest);
    }
    const COMMANDS: &[&str] = &[
        "parse", "run", "explore", "mhp", "race", "lint", "absint", "check", "x10", "bench",
    ];
    if !COMMANDS.contains(&cmd) {
        eprintln!("error: unknown command `{cmd}`");
        return usage();
    }
    let (target, optargs) = match rest.split_first() {
        Some((t, o)) => (t.as_str(), o),
        None => return usage(),
    };
    let opts = match parse_opts(optargs) {
        Ok((mut o, seen)) => {
            if let Err(e) = validate_flags(cmd, &seen) {
                eprintln!("error: {e}");
                return usage();
            }
            if let Err(e) = env_hooks(&mut o, cmd) {
                eprintln!("error: {e}");
                return usage();
            }
            if cmd == "run" {
                let runtime_flags = ["--jobs", "--schedule-seed", "--grain"]
                    .iter()
                    .any(|f| seen.contains(f));
                if seen.contains(&"--sched") && (runtime_flags || o.elide) {
                    eprintln!(
                        "error: `--sched` drives the semantics stepper; it conflicts with \
                         the runtime flags (--jobs/--schedule-seed/--grain/--elide)"
                    );
                    return usage();
                }
                if o.elide && runtime_flags {
                    eprintln!(
                        "error: `--elide` runs serially; it conflicts with \
                         --jobs/--schedule-seed/--grain"
                    );
                    return usage();
                }
                o.use_runtime = runtime_flags;
            }
            if cmd == "check" && o.shards.is_some() && !o.ladder {
                eprintln!(
                    "error: `--shards` on `check` requires `--ladder` \
                     (the sharded explorer is a ladder rung)"
                );
                return usage();
            }
            if cmd == "absint" && o.format == LintFormat::Sarif {
                eprintln!(
                    "error: `absint` renders text or json only (`--format sarif` is for `lint`)"
                );
                return usage();
            }
            o
        }
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };

    match run_command(cmd, target, &opts) {
        Ok(Verdict::Conclusive) => ExitCode::SUCCESS,
        Ok(Verdict::Inconclusive(e)) => {
            eprintln!("inconclusive: {e} exhausted");
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
