//! End-to-end tests of `fx10 explore --shards N`: the differential
//! oracle (sharded answers are byte-identical to the sequential
//! reference, with and without injected faults), supervisor restart and
//! work migration, the sharded rung of the `check --ladder` degradation
//! ladder, the chaos-hook gating contract, and the
//! resume-under-changed-budget matrix.
//!
//! Fault injection uses the environment hooks:
//!
//! | variable               | effect                                        |
//! |------------------------|-----------------------------------------------|
//! | `FX10_SHARD_KILL=k[:n]`| shard `k` exits mid-protocol at its nth ckpt  |
//! | `FX10_SHARD_WEDGE=k[:s]`| shard `k` hangs forever after `s` expansions |
//! | `FX10_SHARD_RESTARTS=N`| overrides the restart budget (0 = migrate)    |

use std::path::PathBuf;
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fx10_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fx10"));
    cmd.current_dir(repo_root()).args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

fn fx10(args: &[&str]) -> Output {
    fx10_env(args, &[])
}

fn code(out: &Output) -> i32 {
    out.status.code().unwrap_or(-1)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Drops the run-shape preamble (`jobs: ...` / `shards: ...`) so that
/// sequential and sharded runs can be compared byte for byte on the
/// *answer*: state count, terminals, verdict, MHP pairs, digest.
fn answer(out: &Output) -> String {
    stdout(out)
        .lines()
        .filter(|l| !l.starts_with("jobs:") && !l.starts_with("shards:"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn temp_dir_for(tag: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("fx10-shard-{tag}-{}-{n}", std::process::id()))
        .display()
        .to_string()
}

const WIDE: &str = "programs/chaos_wide.fx10";

fn sequential_reference() -> Output {
    let out = fx10(&["explore", WIDE, "--digest-xor"]);
    assert_eq!(code(&out), 0, "{out:?}");
    out
}

/// The differential oracle: `--shards 1`, `2` and `4` all reproduce the
/// sequential digest, MHP set and verdict byte for byte.
#[test]
fn sharded_answer_is_byte_identical_at_shards_1_2_4() {
    let reference = sequential_reference();
    assert!(stdout(&reference).contains("digest-xor:"), "{reference:?}");
    for shards in ["1", "2", "4"] {
        let out = fx10(&["explore", WIDE, "--digest-xor", "--shards", shards]);
        assert_eq!(code(&out), 0, "--shards {shards}: {out:?}");
        let s = stdout(&out);
        assert!(
            s.contains(&format!("shards: {shards} worker process(es)")),
            "{s}"
        );
        assert_eq!(
            answer(&out),
            answer(&reference),
            "--shards {shards} diverged from the sequential reference"
        );
    }
}

/// One shard SIGKILLed at its first checkpoint *and* one shard wedged
/// mid-run: the supervisor restarts both from their durable checkpoints
/// and the final answer is still byte-identical.
#[test]
fn killed_and_wedged_shards_restart_and_converge() {
    let reference = sequential_reference();
    let ck = temp_dir_for("kill-wedge");
    let out = fx10_env(
        &[
            "explore",
            WIDE,
            "--digest-xor",
            "--shards",
            "4",
            "--checkpoint",
            &ck,
            "--checkpoint-every",
            "200",
        ],
        &[
            ("FX10_SHARD_KILL", "1:1"),
            ("FX10_SHARD_WEDGE", "2:5000"),
            ("FX10_STALL_MS", "1500"),
        ],
    );
    assert_eq!(code(&out), 0, "{out:?}");
    let s = stdout(&out);
    assert!(
        s.contains("2 restart(s)"),
        "both injected faults must be healed by restarts: {s}\n{}",
        stderr(&out)
    );
    assert_eq!(
        answer(&out),
        answer(&reference),
        "faults must not change the answer"
    );
    let _ = std::fs::remove_dir_all(&ck);
}

/// With the restart budget forced to zero, a killed shard cannot come
/// back — its checkpoint and unacked frames migrate to a survivor,
/// which adopts the digest range and completes the full reachable set.
#[test]
fn dead_shard_migrates_its_work_to_a_survivor() {
    let reference = sequential_reference();
    let ck = temp_dir_for("migrate");
    let out = fx10_env(
        &[
            "explore",
            WIDE,
            "--digest-xor",
            "--shards",
            "3",
            "--checkpoint",
            &ck,
            "--checkpoint-every",
            "200",
        ],
        &[("FX10_SHARD_KILL", "0:1"), ("FX10_SHARD_RESTARTS", "0")],
    );
    assert_eq!(code(&out), 0, "{out:?}");
    let s = stdout(&out);
    let e = stderr(&out);
    assert!(s.contains("1 migration(s)"), "{s}\n{e}");
    assert!(
        e.contains("migrating shard"),
        "the migration event must be traced: {e}"
    );
    assert_eq!(
        answer(&out),
        answer(&reference),
        "migration must preserve the full reachable set"
    );
    let _ = std::fs::remove_dir_all(&ck);
}

/// `check --ladder --shards N` answers on the sharded rung when the
/// fleet is healthy, and reports it.
#[test]
fn ladder_answers_on_the_sharded_rung() {
    let out = fx10(&[
        "check",
        "programs/example22.fx10",
        "--ladder",
        "--shards",
        "2",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let s = stdout(&out);
    assert!(
        s.contains("ladder: answered on rung sharded-explore"),
        "{s}"
    );
    assert!(s.contains("soundness check PASSED"), "{s}");
}

/// When the whole fleet dies and cannot restart, the ladder records the
/// sharded failure and descends to the in-process parallel rung, which
/// still answers.
#[test]
fn fleet_death_descends_the_ladder_to_parallel_explore() {
    let out = fx10_env(
        &[
            "check",
            "programs/example22.fx10",
            "--ladder",
            "--shards",
            "1",
        ],
        &[("FX10_SHARD_KILL", "0:1"), ("FX10_SHARD_RESTARTS", "0")],
    );
    assert_eq!(code(&out), 0, "{out:?}");
    let s = stdout(&out);
    assert!(
        s.contains("sharded-explore failed"),
        "the descent must be traced: {s}"
    );
    assert!(
        s.contains("ladder: answered on rung parallel-explore"),
        "{s}"
    );
    assert!(s.contains("soundness check PASSED"), "{s}");
}

/// Sharding flags obey the usage contract: `--shards 0` is rejected,
/// `--resume` cannot be combined with `--shards`, and `check --shards`
/// requires the ladder.
#[test]
fn shard_flag_misuse_exits_2() {
    let out = fx10(&["explore", WIDE, "--shards", "0"]);
    assert_eq!(code(&out), 2, "{out:?}");

    let out = fx10(&["explore", WIDE, "--shards", "2", "--resume", "x.fxsnap"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(
        stderr(&out).contains("per-shard checkpoints"),
        "{}",
        stderr(&out)
    );

    let out = fx10(&["check", "programs/example22.fx10", "--shards", "2"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("--ladder"), "{}", stderr(&out));

    let out = fx10(&["mhp", "programs/example22.fx10", "--shards", "2"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(
        stderr(&out).contains("is not valid for"),
        "{}",
        stderr(&out)
    );
}

/// `fx10 shard-worker` is an internal child mode: fed no protocol at
/// all it fails fast with a message pointing at `--shards`, and a
/// cleanly closed pipe (supervisor shutdown) is a clean exit.
#[test]
fn shard_worker_run_by_hand_fails_fast() {
    use std::process::Stdio;
    // Keep stdin open but silent: the INIT grace (shrunk via the env
    // override) elapses and the worker refuses to run.
    let mut child = Command::new(env!("CARGO_BIN_EXE_fx10"))
        .current_dir(repo_root())
        .arg("shard-worker")
        .env("FX10_SHARD_INIT_TIMEOUT_MS", "100")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let stdin = child.stdin.take().unwrap(); // hold it open until the wait
    let out = child.wait_with_output().expect("worker exits");
    drop(stdin);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not run by hand"),
        "{out:?}"
    );

    // EOF on stdin before INIT is the supervisor's shutdown signal.
    let out = fx10(&["shard-worker"]);
    assert_eq!(code(&out), 0, "{out:?}");
}

/// Chaos hooks only make sense on commands that explore; on anything
/// else a set hook is a usage error, not a silent no-op (satellite:
/// a fault you planned must never be silently skipped).
#[test]
fn chaos_hooks_are_rejected_on_non_exploring_commands() {
    for var in [
        "FX10_KILL_AT_CHECKPOINT",
        "FX10_WEDGE_WORKER",
        "FX10_STALL_MS",
        "FX10_SHARD_KILL",
        "FX10_SHARD_WEDGE",
        "FX10_SHARD_RESTARTS",
    ] {
        for cmd in ["parse", "mhp", "lint"] {
            let out = fx10_env(&[cmd, "programs/example22.fx10"], &[(var, "1")]);
            assert_eq!(code(&out), 2, "{var} on {cmd}: {out:?}");
            let e = stderr(&out);
            assert!(
                e.contains(var) && e.contains("commands that explore"),
                "{var} on {cmd}: {e}"
            );
        }
        // ... and `run` executes a single schedule, it does not explore.
        let out = fx10_env(&["run", "programs/fork_join.fx10"], &[(var, "1")]);
        assert_eq!(code(&out), 2, "{var} on run: {out:?}");
    }
}

/// Malformed values in the shard chaos hooks are usage errors on the
/// commands that *do* explore — a typo must not disable the fault.
#[test]
fn malformed_shard_hooks_exit_2() {
    for (key, val) in [
        ("FX10_SHARD_KILL", "first"),
        ("FX10_SHARD_KILL", "1:zero"),
        ("FX10_SHARD_KILL", "1:0"),
        ("FX10_SHARD_WEDGE", "one"),
        ("FX10_SHARD_WEDGE", "1:lots"),
        ("FX10_SHARD_RESTARTS", "none"),
    ] {
        let out = fx10_env(&["explore", WIDE, "--shards", "2"], &[(key, val)]);
        assert_eq!(code(&out), 2, "{key}={val}: {out:?}");
        assert!(stderr(&out).contains(key), "{key}: {}", stderr(&out));
    }
}

/// The resume-under-changed-budget matrix. The snapshot fingerprint
/// deliberately excludes `--max-states`, so a truncated run's
/// checkpoint resumes under any budget: a smaller or equal budget stays
/// inconclusive (exit 3), a larger budget completes the exploration
/// (exit 0) and reproduces the uninterrupted reference answer.
#[test]
fn resume_under_changed_budget_matrix() {
    let ck = format!("{}.fxsnap", temp_dir_for("budget-matrix"));
    let truncated = fx10(&[
        "explore",
        WIDE,
        "--max-states",
        "5000",
        "--checkpoint",
        &ck,
        "--checkpoint-every",
        "1000",
    ]);
    assert_eq!(code(&truncated), 3, "{truncated:?}");
    assert!(
        stderr(&truncated).contains("inconclusive: state budget exhausted"),
        "{truncated:?}"
    );

    // Smaller and equal budgets: still inconclusive, same exit code.
    for budget in ["3000", "5000"] {
        let out = fx10(&["explore", WIDE, "--max-states", budget, "--resume", &ck]);
        assert_eq!(code(&out), 3, "budget {budget}: {out:?}");
        assert!(
            stderr(&out).contains("inconclusive: state budget exhausted"),
            "budget {budget}: {out:?}"
        );
        assert!(stderr(&out).contains("resuming from"), "{out:?}");
    }

    // A larger budget finishes the job and matches the reference.
    let resumed = fx10(&["explore", WIDE, "--resume", &ck]);
    assert_eq!(code(&resumed), 0, "{resumed:?}");
    let reference = fx10(&["explore", WIDE]);
    assert_eq!(code(&reference), 0);
    assert_eq!(answer(&resumed), answer(&reference));
    let _ = std::fs::remove_file(&ck);
}

/// A checkpoint corrupted by a bit flip or truncation after it was
/// written is refused with exit 2 (typed snapshot error), never a
/// panic — the process-level face of the decoder fuzz suite.
#[test]
fn corrupted_checkpoint_files_exit_2() {
    let valid = std::fs::read(repo_root().join("programs/snap_example22.fxsnap")).unwrap();

    let flipped_path = format!("{}.fxsnap", temp_dir_for("bitflip"));
    let mut flipped = valid.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    std::fs::write(&flipped_path, &flipped).unwrap();
    let out = fx10(&[
        "explore",
        "programs/example22.fx10",
        "--resume",
        &flipped_path,
    ]);
    assert_eq!(code(&out), 2, "{out:?}");
    let e = stderr(&out);
    assert!(
        !e.contains("panicked at"),
        "corruption must not panic the CLI: {e}"
    );
    let _ = std::fs::remove_file(&flipped_path);

    let cut_path = format!("{}.fxsnap", temp_dir_for("truncate"));
    std::fs::write(&cut_path, &valid[..valid.len() - 7]).unwrap();
    let out = fx10(&["explore", "programs/example22.fx10", "--resume", &cut_path]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("truncated"), "{}", stderr(&out));
    let _ = std::fs::remove_file(&cut_path);
}
