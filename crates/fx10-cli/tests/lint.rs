//! End-to-end tests of `fx10 lint`: format contract, golden files, the
//! `--deny`/`--allow` exit-code semantics, and flag auditing.
//!
//! Goldens live in `programs/golden/` and are byte-exact: the renderers
//! embed no timestamps or environment data, so any drift is a real
//! behavior change and must be reviewed by regenerating the file.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fx10(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fx10"))
        .current_dir(repo_root())
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(repo_root().join("programs/golden").join(name))
        .unwrap_or_else(|e| panic!("golden `{name}` unreadable: {e}"))
}

fn assert_golden(args: &[&str], name: &str) {
    let out = fx10(args);
    assert_eq!(stdout(&out), golden(name), "golden drift for {args:?}");
}

#[test]
fn text_goldens_are_stable() {
    for f in [
        "lint_ww_race",
        "lint_rw_race",
        "lint_dead_method",
        "lint_redundant_finish",
        "lint_inert_async",
        "lint_precision_delta",
        "lint_clean",
    ] {
        assert_golden(
            &["lint", &format!("programs/{f}.fx10")],
            &format!("{f}.txt"),
        );
    }
    assert_golden(
        &["lint", "programs/lint_stuck_loop.fx10", "--input", "0,1"],
        "lint_stuck_loop.txt",
    );
}

#[test]
fn sarif_goldens_cover_racy_and_clean() {
    assert_golden(
        &["lint", "programs/lint_ww_race.fx10", "--format", "sarif"],
        "lint_ww_race.sarif",
    );
    assert_golden(
        &["lint", "programs/lint_clean.fx10", "--format", "sarif"],
        "lint_clean.sarif",
    );
}

#[test]
fn sarif_on_racey_has_a_witnessed_race() {
    let out = fx10(&["lint", "programs/racey.fx10", "--format", "sarif"]);
    assert!(out.status.success(), "{out:?}");
    let s = stdout(&out);
    assert!(s.contains("\"version\": \"2.1.0\""), "{s}");
    assert!(s.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
    assert!(s.contains("\"ruleId\": \"race-write-write\""), "{s}");
    assert!(s.contains("\"witnessSchedule\": ["), "{s}");
    assert!(s.contains("\"confidence\": \"confirmed\""), "{s}");
}

#[test]
fn json_format_carries_the_full_model() {
    let out = fx10(&["lint", "programs/lint_ww_race.fx10", "--format", "json"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("\"code\": \"race-write-write\""), "{s}");
    assert!(s.contains("\"line\": 3"), "{s}");
    assert!(s.contains("\"confidence\": \"confirmed\""), "{s}");
    assert!(s.contains("\"may_be_spurious\": false"), "{s}");
    assert!(s.contains("\"witness\": [0]"), "{s}");
    assert!(s.contains("\"refuted_races\": 0"), "{s}");
}

#[test]
fn deny_fails_on_matching_findings_only() {
    // A denied race: exit 1.
    let out = fx10(&["lint", "programs/racey.fx10", "--deny", "race"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // Clean fixture, same deny: exit 0.
    let out = fx10(&["lint", "programs/lint_clean.fx10", "--deny", "race"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // The group selector `race` covers read-write too.
    let out = fx10(&["lint", "programs/lint_rw_race.fx10", "--deny", "race"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // Denying an unrelated rule on a racy program: exit 0.
    let out = fx10(&["lint", "programs/racey.fx10", "--deny", "dead-method"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // `--deny all` on the stuck-loop fixture under the stuck input.
    let out = fx10(&[
        "lint",
        "programs/lint_stuck_loop.fx10",
        "--input",
        "0,1",
        "--deny",
        "all",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn allow_suppresses_before_deny_sees_it() {
    let out = fx10(&[
        "lint",
        "programs/racey.fx10",
        "--allow",
        "race",
        "--deny",
        "all",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stdout(&out).contains("0 errors, 0 warnings, 0 notes"));
}

#[test]
fn unknown_selector_or_format_is_a_usage_error() {
    let out = fx10(&["lint", "programs/racey.fx10", "--deny", "tyop"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = fx10(&["lint", "programs/racey.fx10", "--allow", "racy"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = fx10(&["lint", "programs/racey.fx10", "--format", "xml"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Lint flags are meaningless elsewhere: audited, not ignored.
    let out = fx10(&["race", "programs/racey.fx10", "--deny", "race"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = fx10(&["lint", "programs/racey.fx10", "--jobs", "4"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn zero_witness_budget_tags_spurious_races() {
    let out = fx10(&["lint", "programs/racey.fx10", "--witness-states", "0"]);
    assert!(out.status.success(), "{out:?}");
    let s = stdout(&out);
    assert!(s.contains("[may-be-spurious]"), "{s}");
    assert!(s.contains("(cs-static)"), "{s}");
    assert!(!s.contains("witness:"), "{s}");
}

#[test]
fn race_output_is_deterministic_and_deduplicated() {
    let one = stdout(&fx10(&["race", "programs/fork_join.fx10"]));
    for _ in 0..3 {
        assert_eq!(stdout(&fx10(&["race", "programs/fork_join.fx10"])), one);
    }
    // Symmetric duplicates are collapsed: each unordered (pair, cell)
    // group appears exactly once.
    let report_lines: Vec<&str> = one.lines().filter(|l| l.contains("a[")).collect();
    let mut dedup = report_lines.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(report_lines.len(), dedup.len(), "{one}");
}

#[test]
fn every_sample_program_lints_in_sarif() {
    // The CI job runs this same sweep from the workflow; keeping it as a
    // test means `cargo test` catches a crash on any shipped sample
    // before the workflow does.
    let dir = repo_root().join("programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.ends_with(".fx10") || name.starts_with("bad_") {
            continue;
        }
        let rel = format!("programs/{name}");
        let out = fx10(&["lint", &rel, "--format", "sarif"]);
        assert!(
            out.status.success(),
            "lint {rel} failed: {:?}",
            String::from_utf8_lossy(&out.stderr)
        );
        let s = stdout(&out);
        assert!(s.contains("\"version\": \"2.1.0\""), "{rel}: {s}");
        checked += 1;
    }
    assert!(
        checked >= 10,
        "expected to sweep the sample programs, got {checked}"
    );
}
