//! End-to-end tests of the `fx10` binary on the sample programs in
//! `programs/`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fx10(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fx10"))
        .current_dir(repo_root())
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn parse_pretty_prints() {
    let out = fx10(&["parse", "programs/example22.fx10"]);
    assert!(out.status.success(), "{out:?}");
    let s = stdout(&out);
    assert!(s.contains("2 method(s), 10 instruction(s)"), "{s}");
    assert!(s.contains("def main() {"), "{s}");
}

#[test]
fn run_fork_join_is_deterministic() {
    for sched in ["leftmost", "rightmost", "random:3"] {
        let out = fx10(&["run", "programs/fork_join.fx10", "--sched", sched]);
        assert!(out.status.success());
        let s = stdout(&out);
        assert!(s.contains("completed"), "{s}");
        assert!(s.contains("a = [4, 1]"), "{sched}: {s}");
    }
}

#[test]
fn mhp_reports_pairs_and_categories() {
    let out = fx10(&["mhp", "programs/example22.fx10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("(S3, S5)"), "{s}");
    assert!(!s.contains("(S3, S4)"), "CS must not report the false positive: {s}");
    assert!(s.contains("total=2 self=0 same=0 diff=2"), "{s}");
}

#[test]
fn mhp_ci_adds_the_false_positive() {
    let out = fx10(&["mhp", "programs/example22.fx10", "--ci"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("(S3, S4)"), "{s}");
}

#[test]
fn race_finds_the_bug() {
    let out = fx10(&["race", "programs/racey.fx10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("1 potential race(s)"), "{s}");
    assert!(s.contains("a[0]"), "{s}");
}

#[test]
fn check_passes_with_zero_false_positives() {
    let out = fx10(&["check", "programs/example22.fx10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("soundness check PASSED"), "{s}");
    assert!(s.contains("zero false positives"), "{s}");
}

#[test]
fn explore_reports_deadlock_freedom() {
    let out = fx10(&["explore", "programs/fork_join.fx10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("deadlock-free: true"), "{s}");
}

#[test]
fn x10_frontend_analyzes_stencil() {
    let out = fx10(&["x10", "programs/stencil.x10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("async-body MHP pairs"), "{s}");
    assert!(s.contains("loop_asyncs: 2"), "{s}");
}

#[test]
fn bench_runs_a_named_benchmark() {
    let out = fx10(&["bench", "mapreduce"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("mapreduce"), "{s}");
    assert!(s.contains("pairs 1/1/0/0"), "{s}");
}

#[test]
fn solver_variants_agree_via_cli() {
    let mut outputs = Vec::new();
    for solver in ["naive", "worklist", "scc", "scc-par"] {
        let out = fx10(&["mhp", "programs/example22.fx10", "--solver", solver]);
        assert!(out.status.success(), "{solver}: {out:?}");
        // Compare only the pair lines (timings differ).
        let pairs: Vec<String> = stdout(&out)
            .lines()
            .filter(|l| l.trim_start().starts_with('('))
            .map(|l| l.to_string())
            .collect();
        outputs.push(pairs);
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn places_flag_reports_refinement() {
    let out = fx10(&["x10", "programs/stencil.x10", "--places"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("places refinement:"), "{s}");
    assert!(s.contains("abstract place(s)"), "{s}");
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!fx10(&[]).status.success());
    assert!(!fx10(&["mhp"]).status.success());
    assert!(!fx10(&["mhp", "programs/example22.fx10", "--bogus"])
        .status
        .success());
    assert!(!fx10(&["frobnicate", "x"]).status.success());
    assert!(!fx10(&["mhp", "no/such/file.fx10"]).status.success());
    assert!(!fx10(&["mhp", "programs/example22.fx10", "--solver", "magic"])
        .status
        .success());
}
