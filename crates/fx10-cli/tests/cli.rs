//! End-to-end tests of the `fx10` binary on the sample programs in
//! `programs/`, including the exit-code contract of the hardened
//! pipeline:
//!
//! | code | meaning |
//! |------|---------------------------------------------------|
//! | 0    | success, conclusive answer                        |
//! | 1    | analysis error (parse / validation / io / unsound)|
//! | 2    | usage error, or a corrupt / mismatched snapshot   |
//! | 3    | budget exhausted — result partial / inconclusive  |
//! | 4    | cancelled, a worker panicked, or a worker stalled |

use std::path::PathBuf;
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fx10(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fx10"))
        .current_dir(repo_root())
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn parse_pretty_prints() {
    let out = fx10(&["parse", "programs/example22.fx10"]);
    assert!(out.status.success(), "{out:?}");
    let s = stdout(&out);
    assert!(s.contains("2 method(s), 10 instruction(s)"), "{s}");
    assert!(s.contains("def main() {"), "{s}");
}

#[test]
fn run_fork_join_is_deterministic() {
    for sched in ["leftmost", "rightmost", "random:3"] {
        let out = fx10(&["run", "programs/fork_join.fx10", "--sched", sched]);
        assert!(out.status.success());
        let s = stdout(&out);
        assert!(s.contains("completed"), "{s}");
        assert!(s.contains("a = [4, 1]"), "{sched}: {s}");
    }
}

#[test]
fn mhp_reports_pairs_and_categories() {
    let out = fx10(&["mhp", "programs/example22.fx10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("(S3, S5)"), "{s}");
    assert!(
        !s.contains("(S3, S4)"),
        "CS must not report the false positive: {s}"
    );
    assert!(s.contains("total=2 self=0 same=0 diff=2"), "{s}");
}

#[test]
fn mhp_ci_adds_the_false_positive() {
    let out = fx10(&["mhp", "programs/example22.fx10", "--ci"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("(S3, S4)"), "{s}");
}

#[test]
fn race_finds_the_bug() {
    let out = fx10(&["race", "programs/racey.fx10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("1 potential race(s)"), "{s}");
    assert!(s.contains("a[0]"), "{s}");
}

#[test]
fn check_passes_with_zero_false_positives() {
    let out = fx10(&["check", "programs/example22.fx10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("soundness check PASSED"), "{s}");
    assert!(s.contains("zero false positives"), "{s}");
}

#[test]
fn explore_reports_deadlock_freedom() {
    let out = fx10(&["explore", "programs/fork_join.fx10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("deadlock-free: true"), "{s}");
}

#[test]
fn explore_jobs_values_agree_line_for_line() {
    // Schedule independence end-to-end: every --jobs value prints the
    // same states, pairs and verdicts (only the jobs banner differs).
    let mut reports = Vec::new();
    for jobs in ["1", "2", "8"] {
        let out = fx10(&["explore", "programs/fork_join.fx10", "--jobs", jobs]);
        assert!(out.status.success(), "jobs={jobs}: {out:?}");
        let body: Vec<String> = stdout(&out)
            .lines()
            .filter(|l| !l.starts_with("jobs:"))
            .map(|l| l.to_string())
            .collect();
        reports.push(body);
    }
    assert!(reports.windows(2).all(|w| w[0] == w[1]), "{reports:?}");
}

#[test]
fn explore_jobs_with_small_budget_is_inconclusive_exit_3() {
    for jobs in ["1", "2", "8"] {
        let out = fx10(&[
            "explore",
            "programs/example22.fx10",
            "--jobs",
            jobs,
            "--budget-states",
            "2",
        ]);
        assert_eq!(code(&out), 3, "jobs={jobs}");
        let s = stdout(&out);
        assert!(s.contains("truncated: state budget exhausted"), "{s}");
    }
}

#[test]
fn bad_jobs_values_exit_2() {
    assert_eq!(
        code(&fx10(&[
            "explore",
            "programs/fork_join.fx10",
            "--jobs",
            "0"
        ])),
        2
    );
    assert_eq!(
        code(&fx10(&[
            "explore",
            "programs/fork_join.fx10",
            "--jobs",
            "many"
        ])),
        2
    );
}

#[test]
fn x10_frontend_analyzes_stencil() {
    let out = fx10(&["x10", "programs/stencil.x10"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("async-body MHP pairs"), "{s}");
    assert!(s.contains("loop_asyncs: 2"), "{s}");
}

#[test]
fn bench_runs_a_named_benchmark() {
    let out = fx10(&["bench", "mapreduce"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("mapreduce"), "{s}");
    assert!(s.contains("pairs 1/1/0/0"), "{s}");
}

#[test]
fn solver_variants_agree_via_cli() {
    let mut outputs = Vec::new();
    for solver in ["naive", "worklist", "scc", "scc-par"] {
        let out = fx10(&["mhp", "programs/example22.fx10", "--solver", solver]);
        assert!(out.status.success(), "{solver}: {out:?}");
        // Compare only the pair lines (timings differ).
        let pairs: Vec<String> = stdout(&out)
            .lines()
            .filter(|l| l.trim_start().starts_with('('))
            .map(|l| l.to_string())
            .collect();
        outputs.push(pairs);
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn places_flag_reports_refinement() {
    let out = fx10(&["x10", "programs/stencil.x10", "--places"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("places refinement:"), "{s}");
    assert!(s.contains("abstract place(s)"), "{s}");
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("process must exit, not be killed")
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(code(&fx10(&[])), 2);
    assert_eq!(code(&fx10(&["mhp"])), 2);
    assert_eq!(
        code(&fx10(&["mhp", "programs/example22.fx10", "--bogus"])),
        2
    );
    assert_eq!(code(&fx10(&["frobnicate", "x"])), 2);
    assert_eq!(
        code(&fx10(&[
            "mhp",
            "programs/example22.fx10",
            "--solver",
            "magic"
        ])),
        2
    );
    assert_eq!(
        code(&fx10(&[
            "mhp",
            "programs/example22.fx10",
            "--budget-iters",
            "nope"
        ])),
        2
    );
    assert_eq!(
        code(&fx10(&[
            "run",
            "programs/fork_join.fx10",
            "--sched",
            "sideways"
        ])),
        2
    );
}

#[test]
fn analysis_errors_exit_1() {
    // Missing file.
    assert_eq!(code(&fx10(&["mhp", "no/such/file.fx10"])), 1);
    // Malformed fixtures: typed parse errors, never a panic.
    for (file, needle) in [
        ("programs/bad_unclosed.fx10", "expected `}`"),
        ("programs/bad_unknown_method.fx10", "unknown method"),
        ("programs/bad_token.fx10", "unexpected character"),
    ] {
        let out = fx10(&["parse", file]);
        assert_eq!(code(&out), 1, "{file}");
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(stderr.contains("parse error"), "{file}: {stderr}");
        assert!(stderr.contains(needle), "{file}: {stderr}");
    }
}

#[test]
fn truncated_check_is_inconclusive_exit_3() {
    let out = fx10(&["check", "programs/fork_join.fx10", "--max-states", "3"]);
    assert_eq!(code(&out), 3);
    let s = stdout(&out);
    assert!(
        s.contains("INCONCLUSIVE (state budget exhausted)"),
        "stdout: {s}"
    );
    // A truncated prefix must not produce unsoundness claims.
    assert!(!s.contains("UNSOUND"), "{s}");
}

#[test]
fn state_budget_flag_truncates_exploration_exit_3() {
    let out = fx10(&["explore", "programs/fork_join.fx10", "--budget-states", "2"]);
    assert_eq!(code(&out), 3);
    let s = stdout(&out);
    assert!(s.contains("truncated: state budget exhausted"), "{s}");
}

#[test]
fn iteration_budget_cuts_analysis_exit_3() {
    let out = fx10(&["mhp", "programs/example22.fx10", "--budget-iters", "5"]);
    assert_eq!(code(&out), 3);
    assert!(stdout(&out).contains("INCONCLUSIVE"));
}

#[test]
fn fallback_ci_reports_the_degradation_path() {
    let out = fx10(&[
        "mhp",
        "programs/example22.fx10",
        "--budget-iters",
        "100",
        "--fallback-ci",
    ]);
    let s = stdout(&out);
    assert!(
        s.contains("context-insensitive over-approximation"),
        "expected the fallback notice, got: {s}"
    );
    // 100 evaluations may also cut the CI baseline on this program, so
    // the degraded answer can still be partial — documented code either
    // way.
    assert!([0, 3].contains(&code(&out)), "exit {}", code(&out));
}

#[test]
fn every_command_survives_a_one_millisecond_deadline() {
    // The acceptance bar for the hardened pipeline: a brutal wall-clock
    // budget may make any command inconclusive (3) or leave it time to
    // finish (0) — it must never panic, hang, or exit off-contract.
    for cmd in ["parse", "run", "explore", "mhp", "race", "check"] {
        for f in [
            "programs/example22.fx10",
            "programs/fork_join.fx10",
            "programs/racey.fx10",
        ] {
            let out = fx10(&[cmd, f, "--timeout-ms", "1"]);
            assert!(
                [0, 3].contains(&code(&out)),
                "{cmd} {f}: exit {} stderr: {}",
                code(&out),
                String::from_utf8_lossy(&out.stderr)
            );
        }
    }
    let out = fx10(&["x10", "programs/stencil.x10", "--timeout-ms", "1"]);
    assert!([0, 3].contains(&code(&out)));
    let out = fx10(&["bench", "stream", "--timeout-ms", "1"]);
    assert!([0, 3].contains(&code(&out)));
}

#[test]
fn solver_choices_all_respect_budgets() {
    for solver in ["naive", "worklist", "scc", "scc-par"] {
        let out = fx10(&[
            "mhp",
            "programs/example22.fx10",
            "--solver",
            solver,
            "--budget-iters",
            "3",
        ]);
        assert_eq!(code(&out), 3, "{solver}");
        let ok = fx10(&["mhp", "programs/example22.fx10", "--solver", solver]);
        assert_eq!(code(&ok), 0, "{solver}");
    }
}

// ---------------------------------------------------------------------------
// Durable checkpoints, snapshot validation, watchdog and ladder (e2e)
// ---------------------------------------------------------------------------

fn fx10_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fx10"));
    cmd.current_dir(repo_root()).args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_snap(tag: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("fx10-cli-{tag}-{}-{n}.fxsnap", std::process::id()))
        .display()
        .to_string()
}

/// Every corrupt-snapshot fixture is rejected before any exploration
/// happens: exit 2 and a typed message naming the defect.
#[test]
fn corrupt_snapshot_fixtures_are_rejected_exit_2() {
    for (fixture, needle) in [
        ("programs/snap_truncated.fxsnap", "truncated"),
        ("programs/snap_bad_magic.fxsnap", "bad magic"),
        (
            "programs/snap_bad_version.fxsnap",
            "unsupported snapshot version 99",
        ),
        ("programs/snap_bad_checksum.fxsnap", "checksum mismatch"),
    ] {
        let out = fx10(&["explore", "programs/example22.fx10", "--resume", fixture]);
        assert_eq!(code(&out), 2, "{fixture}: {out:?}");
        let e = stderr(&out);
        assert!(e.contains(needle), "{fixture}: expected `{needle}` in {e}");
    }
    // A structurally valid snapshot of the *wrong program* is rejected by
    // its fingerprint, same exit code.
    let out = fx10(&[
        "explore",
        "programs/fork_join.fx10",
        "--resume",
        "programs/snap_example22.fxsnap",
    ]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("fingerprint"), "{}", stderr(&out));
    // A missing snapshot file is an I/O error, not a usage error.
    assert_eq!(
        code(&fx10(&[
            "explore",
            "programs/example22.fx10",
            "--resume",
            "no/such.fxsnap"
        ])),
        1
    );
}

/// The checked-in valid snapshot resumes cleanly and reproduces the
/// from-scratch exploration line for line.
#[test]
fn valid_snapshot_fixture_resumes_to_the_reference_answer() {
    let fresh = fx10(&["explore", "programs/example22.fx10"]);
    assert_eq!(code(&fresh), 0);
    let resumed = fx10(&[
        "explore",
        "programs/example22.fx10",
        "--resume",
        "programs/snap_example22.fxsnap",
    ]);
    assert_eq!(code(&resumed), 0, "{resumed:?}");
    assert!(stderr(&resumed).contains("resuming from"), "{resumed:?}");
    assert_eq!(stdout(&resumed), stdout(&fresh));
}

/// Every value-taking flag rejects both a missing value and a garbage
/// value with exit 2 (and the usage text on stderr) — nothing is
/// silently defaulted.
#[test]
fn value_flags_reject_missing_and_garbage_values_exit_2() {
    let cases: &[(&[&str], &str)] = &[
        (&["run", "programs/fork_join.fx10", "--sched"], "sideways"),
        (&["run", "programs/fork_join.fx10", "--steps"], "lots"),
        (&["run", "programs/fork_join.fx10", "--input"], "1,x"),
        (
            &["explore", "programs/fork_join.fx10", "--max-states"],
            "big",
        ),
        (&["explore", "programs/fork_join.fx10", "--jobs"], "many"),
        (
            &["explore", "programs/fork_join.fx10", "--checkpoint-every"],
            "often",
        ),
        (&["mhp", "programs/example22.fx10", "--solver"], "magic"),
        (
            &["mhp", "programs/example22.fx10", "--budget-states"],
            "nope",
        ),
        (
            &["mhp", "programs/example22.fx10", "--budget-iters"],
            "nope",
        ),
        (&["mhp", "programs/example22.fx10", "--timeout-ms"], "soon"),
    ];
    for (prefix, garbage) in cases {
        let flag = prefix.last().unwrap();
        // Missing value: the flag is the final token.
        let out = fx10(prefix);
        assert_eq!(code(&out), 2, "{flag} with no value: {out:?}");
        assert!(stderr(&out).contains("usage"), "{flag}: {}", stderr(&out));
        // Garbage value.
        let mut argv: Vec<&str> = prefix.to_vec();
        argv.push(garbage);
        let out = fx10(&argv);
        assert_eq!(code(&out), 2, "{flag} {garbage}: {out:?}");
        assert!(stderr(&out).contains("usage"), "{flag}: {}", stderr(&out));
    }
    // --checkpoint and --resume take paths: only the missing-value form
    // is a usage error.
    for flag in ["--checkpoint", "--resume"] {
        let out = fx10(&["explore", "programs/fork_join.fx10", flag]);
        assert_eq!(code(&out), 2, "{flag} with no value: {out:?}");
    }
    // --checkpoint-every 0 would mean "never checkpoint": rejected.
    let ck = temp_snap("every0");
    let out = fx10(&[
        "explore",
        "programs/fork_join.fx10",
        "--checkpoint",
        &ck,
        "--checkpoint-every",
        "0",
    ]);
    assert_eq!(code(&out), 2, "{out:?}");
}

/// A flag that exists but does not apply to the subcommand is reported,
/// not silently ignored.
#[test]
fn known_flag_on_the_wrong_subcommand_exits_2() {
    let cases: &[&[&str]] = &[
        &["mhp", "programs/example22.fx10", "--jobs", "2"],
        &["explore", "programs/fork_join.fx10", "--sched", "leftmost"],
        &["explore", "programs/fork_join.fx10", "--ladder"],
        &["explore", "programs/fork_join.fx10", "--ci"],
        &["run", "programs/fork_join.fx10", "--solver", "scc"],
        &["race", "programs/racey.fx10", "--places"],
        &["check", "programs/example22.fx10", "--fallback-ci"],
    ];
    for argv in cases {
        let out = fx10(argv);
        assert_eq!(code(&out), 2, "{argv:?}: {out:?}");
        let e = stderr(&out);
        assert!(e.contains("is not valid for"), "{argv:?}: {e}");
    }
    // --checkpoint-every without --checkpoint is contradictory, same code.
    let out = fx10(&[
        "explore",
        "programs/fork_join.fx10",
        "--checkpoint-every",
        "5",
    ]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(
        stderr(&out).contains("requires --checkpoint"),
        "{}",
        stderr(&out)
    );
}

/// Kill-and-resume end-to-end: a run killed at its first durable
/// checkpoint exits 4; resuming the snapshot finishes with exit 0 and
/// byte-identical stdout to an uninterrupted run.
#[test]
fn kill_at_checkpoint_then_resume_matches_the_reference_run() {
    let ck = temp_snap("kill-resume");
    let killed = fx10_env(
        &[
            "explore",
            "programs/fork_join.fx10",
            "--jobs",
            "2",
            "--checkpoint",
            &ck,
            "--checkpoint-every",
            "7",
        ],
        &[("FX10_KILL_AT_CHECKPOINT", "1")],
    );
    assert_eq!(code(&killed), 4, "{killed:?}");
    let resumed = fx10(&[
        "explore",
        "programs/fork_join.fx10",
        "--jobs",
        "2",
        "--resume",
        &ck,
    ]);
    assert_eq!(code(&resumed), 0, "{resumed:?}");
    let reference = fx10(&["explore", "programs/fork_join.fx10", "--jobs", "2"]);
    assert_eq!(code(&reference), 0);
    assert_eq!(stdout(&resumed), stdout(&reference));
    let _ = std::fs::remove_file(&ck);
}

/// Garbage in the chaos-hook environment variables is a usage error —
/// a typo must not silently disable the planned fault.
#[test]
fn malformed_chaos_env_hooks_exit_2() {
    for (key, val) in [
        ("FX10_KILL_AT_CHECKPOINT", "zero"),
        ("FX10_KILL_AT_CHECKPOINT", "0"),
        ("FX10_WEDGE_WORKER", "first"),
        ("FX10_WEDGE_WORKER", "1:lots"),
        ("FX10_STALL_MS", "0"),
        ("FX10_STALL_MS", "forever"),
    ] {
        let out = fx10_env(&["explore", "programs/fork_join.fx10"], &[(key, val)]);
        assert_eq!(code(&out), 2, "{key}={val}: {out:?}");
        assert!(stderr(&out).contains(key), "{key}: {}", stderr(&out));
    }
}

/// A wedged worker under `check --ladder` descends to the sequential
/// rung, reports the rung it answered on, and still proves soundness.
#[test]
fn ladder_reports_the_answering_rung_under_a_wedge() {
    let out = fx10_env(
        &[
            "check",
            "programs/example22.fx10",
            "--ladder",
            "--jobs",
            "2",
        ],
        &[("FX10_WEDGE_WORKER", "0"), ("FX10_STALL_MS", "200")],
    );
    assert_eq!(code(&out), 0, "{out:?}");
    let s = stdout(&out);
    assert!(
        s.contains("ladder: answered on rung sequential-explore"),
        "{s}"
    );
    assert!(s.contains("stalled"), "the descent must be traced: {s}");
    assert!(s.contains("soundness check PASSED"), "{s}");
}

/// A wedged worker on a plain (non-ladder) run surfaces as the typed
/// stall with exit 4.
#[test]
fn wedged_worker_without_the_ladder_exits_4() {
    let out = fx10_env(
        &["explore", "programs/fork_join.fx10", "--jobs", "2"],
        &[("FX10_WEDGE_WORKER", "0"), ("FX10_STALL_MS", "200")],
    );
    assert_eq!(code(&out), 4, "{out:?}");
    assert!(stderr(&out).contains("stalled"), "{}", stderr(&out));
}

// ---------------------------------------------------------------------------
// The real runtime: `fx10 run --jobs/--schedule-seed/--grain/--elide`
// ---------------------------------------------------------------------------

/// Drops the engine-identifying `runtime:` banner so parallel and serial
/// outputs can be compared byte-for-byte — the CLI face of the
/// sequential-elision oracle.
fn sans_banner(out: &Output) -> String {
    stdout(out)
        .lines()
        .filter(|l| !l.starts_with("runtime:"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// On a race-free fixture every parallel schedule prints exactly what the
/// serial elision prints (modulo the banner), across jobs and seeds.
#[test]
fn run_parallel_output_matches_elision_on_race_free_fixture() {
    let serial = fx10(&["run", "programs/rt_fanout.fx10", "--elide"]);
    assert_eq!(code(&serial), 0, "{serial:?}");
    let reference = sans_banner(&serial);
    assert!(reference.contains("races: none"), "{reference}");
    for jobs in ["1", "2", "8"] {
        for seed in ["0", "7", "13"] {
            let out = fx10(&[
                "run",
                "programs/rt_fanout.fx10",
                "--jobs",
                jobs,
                "--schedule-seed",
                seed,
            ]);
            assert_eq!(code(&out), 0, "jobs={jobs} seed={seed}: {out:?}");
            assert_eq!(
                sans_banner(&out),
                reference,
                "jobs={jobs} seed={seed} diverged from elision"
            );
        }
    }
    // Granularity control changes scheduling, never results.
    let out = fx10(&[
        "run",
        "programs/rt_fanout.fx10",
        "--jobs",
        "4",
        "--grain",
        "8",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    assert_eq!(sans_banner(&out), reference, "--grain diverged");
}

/// The dynamic detector reports the planted pairs on the racy fixture —
/// on real parallel runs and under instrumented elision alike.
#[test]
fn run_reports_detected_races_on_the_racy_fixture() {
    for argv in [
        &[
            "run",
            "programs/rt_racy.fx10",
            "--jobs",
            "4",
            "--schedule-seed",
            "2",
        ][..],
        &["run", "programs/rt_racy.fx10", "--elide"][..],
    ] {
        let out = fx10(argv);
        assert_eq!(code(&out), 0, "{argv:?}: {out:?}");
        let s = stdout(&out);
        assert!(s.contains("races: 2 pair(s) observed:"), "{argv:?}: {s}");
        assert!(s.contains("(W1, W2) on a[0]"), "{argv:?}: {s}");
        assert!(s.contains("(W3, R1) on a[1]"), "{argv:?}: {s}");
    }
}

/// The new runtime flags obey the same audit contract as every other
/// flag: valid on `run`, rejected with exit 2 anywhere else, and
/// mutually exclusive combinations are usage errors, not silent picks.
#[test]
fn runtime_flags_pass_the_allowed_flags_audit() {
    // Valid rows.
    for argv in [
        &["run", "programs/rt_fanout.fx10", "--jobs", "2"][..],
        &["run", "programs/rt_fanout.fx10", "--schedule-seed", "5"][..],
        &["run", "programs/rt_fanout.fx10", "--grain", "4"][..],
        &["run", "programs/rt_fanout.fx10", "--elide"][..],
    ] {
        let out = fx10(argv);
        assert_eq!(code(&out), 0, "{argv:?}: {out:?}");
    }
    // Wrong subcommand.
    for argv in [
        &["explore", "programs/fork_join.fx10", "--schedule-seed", "1"][..],
        &["mhp", "programs/example22.fx10", "--grain", "1"][..],
        &["explore", "programs/fork_join.fx10", "--elide"][..],
        &["run", "programs/fork_join.fx10", "--shards", "2"][..],
    ] {
        let out = fx10(argv);
        assert_eq!(code(&out), 2, "{argv:?}: {out:?}");
        assert!(stderr(&out).contains("is not valid for"), "{argv:?}");
    }
    // Conflicting engines.
    for argv in [
        &[
            "run",
            "programs/fork_join.fx10",
            "--sched",
            "leftmost",
            "--jobs",
            "2",
        ][..],
        &[
            "run",
            "programs/fork_join.fx10",
            "--sched",
            "leftmost",
            "--elide",
        ][..],
        &["run", "programs/fork_join.fx10", "--elide", "--jobs", "2"][..],
        &[
            "run",
            "programs/fork_join.fx10",
            "--elide",
            "--schedule-seed",
            "1",
        ][..],
    ] {
        let out = fx10(argv);
        assert_eq!(code(&out), 2, "{argv:?}: {out:?}");
        assert!(
            stderr(&out).contains("conflicts"),
            "{argv:?}: {}",
            stderr(&out)
        );
    }
    // Garbage and missing values.
    for argv in [
        &["run", "programs/fork_join.fx10", "--schedule-seed", "abc"][..],
        &["run", "programs/fork_join.fx10", "--schedule-seed"][..],
        &["run", "programs/fork_join.fx10", "--grain", "many"][..],
        &["run", "programs/fork_join.fx10", "--grain"][..],
    ] {
        let out = fx10(argv);
        assert_eq!(code(&out), 2, "{argv:?}: {out:?}");
        assert!(stderr(&out).contains("usage"), "{argv:?}");
    }
}

/// The six chaos env hooks' exit-2 contract covers `fx10 run` in all
/// three engine modes: a fault the runtime cannot honor must never be
/// silently ignored.
#[test]
fn chaos_env_hooks_are_rejected_on_run() {
    for hook in [
        "FX10_KILL_AT_CHECKPOINT",
        "FX10_WEDGE_WORKER",
        "FX10_STALL_MS",
        "FX10_SHARD_KILL",
        "FX10_SHARD_WEDGE",
        "FX10_SHARD_RESTARTS",
    ] {
        for argv in [
            &["run", "programs/fork_join.fx10"][..],
            &["run", "programs/fork_join.fx10", "--jobs", "2"][..],
            &["run", "programs/fork_join.fx10", "--elide"][..],
        ] {
            let out = fx10_env(argv, &[(hook, "1")]);
            assert_eq!(code(&out), 2, "{hook} on {argv:?}: {out:?}");
            assert!(stderr(&out).contains(hook), "{hook}: {}", stderr(&out));
        }
    }
}
