//! End-to-end tests of `fx10 absint` and the value-analysis surface of
//! `fx10 race` / `fx10 lint`: golden files, strict `--domain` /
//! `--input` value parsing (exit 2, never a silent default), and the
//! per-command flag audit.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fx10(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fx10"))
        .current_dir(repo_root())
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(repo_root().join("programs/golden").join(name))
        .unwrap_or_else(|e| panic!("golden `{name}` unreadable: {e}"))
}

fn assert_golden(args: &[&str], name: &str) {
    let out = fx10(args);
    assert_eq!(code(&out), 0, "{args:?}: {}", stderr(&out));
    assert_eq!(stdout(&out), golden(name), "golden drift for {args:?}");
}

#[test]
fn absint_goldens_are_stable() {
    assert_golden(
        &["absint", "programs/example22.fx10"],
        "absint_example22.txt",
    );
    assert_golden(
        &[
            "absint",
            "programs/lint_stuck_loop.fx10",
            "--domain",
            "const",
            "--input",
            "0,1",
        ],
        "absint_stuck_loop.txt",
    );
    assert_golden(
        &["absint", "programs/absint_dead_branch.fx10"],
        "absint_dead_branch.txt",
    );
    assert_golden(
        &[
            "absint",
            "programs/absint_dead_branch.fx10",
            "--format",
            "json",
        ],
        "absint_dead_branch.json",
    );
}

#[test]
fn absint_json_reports_pruning_for_ci() {
    let out = fx10(&[
        "absint",
        "programs/absint_dead_branch.fx10",
        "--format",
        "json",
    ]);
    let s = stdout(&out);
    assert!(
        s.contains("\"pruning\": {\"before\": 8, \"after\": 1,"),
        "{s}"
    );
    assert!(s.contains("\"reachable\": false"), "{s}");
    assert!(s.contains("\"divergentLoops\""), "{s}");
}

#[test]
fn every_domain_answers_on_every_fixture() {
    for d in ["const", "interval", "parity"] {
        for f in [
            "programs/example22.fx10",
            "programs/racey.fx10",
            "programs/fork_join.fx10",
            "programs/chaos_wide.fx10",
        ] {
            let out = fx10(&["absint", f, "--domain", d]);
            assert_eq!(code(&out), 0, "{d} {f}: {}", stderr(&out));
            let s = stdout(&out);
            assert!(s.contains(&format!("({d} domain")), "{d} {f}: {s}");
            assert!(s.contains("mhp pruning:"), "{d} {f}: {s}");
        }
    }
}

#[test]
fn domain_values_are_strictly_parsed_exit_2() {
    for bad in ["Const", "intervals", "octagon", ""] {
        let out = fx10(&["absint", "programs/example22.fx10", "--domain", bad]);
        assert_eq!(code(&out), 2, "`{bad}` must be a usage error");
        assert!(stderr(&out).contains("unknown domain"), "{}", stderr(&out));
    }
    let out = fx10(&["absint", "programs/example22.fx10", "--domain"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("--domain needs a value"));
}

#[test]
fn domain_flag_is_audited_per_command() {
    // Valid where the value analysis runs...
    for cmd in ["absint", "lint", "race"] {
        let out = fx10(&[cmd, "programs/example22.fx10", "--domain", "parity"]);
        assert_eq!(code(&out), 0, "{cmd}: {}", stderr(&out));
    }
    // ...and a usage error everywhere else, never silently ignored.
    for cmd in ["parse", "run", "explore", "mhp", "check"] {
        let out = fx10(&[cmd, "programs/example22.fx10", "--domain", "parity"]);
        assert_eq!(code(&out), 2, "{cmd} must reject --domain");
        assert!(
            stderr(&out).contains("`--domain` is not valid for"),
            "{cmd}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn input_segments_are_strictly_parsed_exit_2() {
    // Garbage, empty segments, trailing commas, and the empty string are
    // usage errors on every command that takes --input.
    for cmd in ["run", "explore", "check", "lint", "absint", "race"] {
        for bad in ["1,x", "1,,2", "1,2,", ""] {
            let out = fx10(&[cmd, "programs/fork_join.fx10", "--input", bad]);
            assert_eq!(code(&out), 2, "{cmd} --input `{bad}`: exit {}", code(&out));
            assert!(
                stderr(&out).contains("bad --input segment"),
                "{cmd} `{bad}`: {}",
                stderr(&out)
            );
        }
        // Whitespace around integers is fine.
        let out = fx10(&[cmd, "programs/fork_join.fx10", "--input", "1, 2"]);
        assert_ne!(code(&out), 2, "{cmd}: {}", stderr(&out));
    }
}

#[test]
fn absint_rejects_sarif_and_foreign_flags() {
    let out = fx10(&["absint", "programs/example22.fx10", "--format", "sarif"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("text or json"), "{}", stderr(&out));
    for flag in [&["--jobs", "4"][..], &["--deny", "race"], &["--ladder"]] {
        let mut args = vec!["absint", "programs/example22.fx10"];
        args.extend_from_slice(flag);
        let out = fx10(&args);
        assert_eq!(code(&out), 2, "{flag:?}");
        assert!(stderr(&out).contains("is not valid for `absint`"));
    }
}

#[test]
fn oob_goldens_and_sarif_are_stable() {
    assert_golden(&["lint", "programs/lint_oob.fx10"], "lint_oob.txt");
    assert_golden(
        &["lint", "programs/lint_oob.fx10", "--format", "sarif"],
        "lint_oob.sarif",
    );
    let sarif = golden("lint_oob.sarif");
    assert!(sarif.contains("\"ruleId\": \"oob-write\""));
    assert!(sarif.contains("\"ruleId\": \"oob-read\""));
    // The grown registry declares the new rules in every SARIF run.
    for rule in ["oob-write", "oob-read", "infeasible-race"] {
        assert!(sarif.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
    }
    // And --deny picks them up like any other code.
    let out = fx10(&["lint", "programs/lint_oob.fx10", "--deny", "oob"]);
    assert_eq!(code(&out), 1);
}

#[test]
fn race_cites_value_analysis_feasibility() {
    // Dead-loop races: every pair is called out as infeasible.
    let out = fx10(&["race", "programs/absint_dead_branch.fx10"]);
    assert_eq!(code(&out), 0);
    let s = stdout(&out);
    assert!(s.contains("is infeasible"), "{s}");
    assert!(s.contains("guard a[0] is always 0"), "{s}");
    // A live race keeps its guard-fact hint instead.
    let out = fx10(&["race", "programs/racey.fx10", "--domain", "const"]);
    let s = stdout(&out);
    assert!(s.contains("stays feasible"), "{s}");
    assert!(s.contains("(const domain)"), "{s}");
}

#[test]
fn lint_demotes_infeasible_races_to_notes() {
    let out = fx10(&[
        "lint",
        "programs/absint_dead_branch.fx10",
        "--format",
        "json",
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("\"code\": \"infeasible-race\""), "{s}");
    assert!(s.contains("\"guard_fact\": \"interval domain:"), "{s}");
    assert!(!s.contains("\"code\": \"race-write-write\""), "{s}");
}
