//! End-to-end tests of the socket transport for sharded exploration:
//! `fx10 explore --shards N --listen HOST:PORT` with worker processes
//! dialing back over loopback TCP.
//!
//! The differential oracle is the same as for the pipe transport — the
//! final answer must be byte-identical to the sequential reference —
//! but here it must hold under *network* faults too, injected by the
//! seeded chaos hooks:
//!
//! | variable                    | effect                                  |
//! |-----------------------------|-----------------------------------------|
//! | `FX10_NET_DROP=p[:seed]`    | drop p% of eligible data frames          |
//! | `FX10_NET_DUP=p[:seed]`     | deliver p% of eligible frames twice      |
//! | `FX10_NET_DELAY_MS=n`       | hold every eligible frame for n ms       |
//! | `FX10_NET_PARTITION=s:n`    | drop worker s's first n data frames      |
//!
//! The handshake tests drive raw TCP clients against a live supervisor
//! using the `fx10-robust` wire codecs, proving that unauthenticated
//! and version-skewed peers are rejected with typed, coded errors while
//! the legitimate fleet completes the run.

use fx10_robust::conn;
use fx10_robust::ipc::{self, kind, reject, Hello, WireMsg};
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fx10_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fx10"));
    cmd.current_dir(repo_root()).args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

fn fx10(args: &[&str]) -> Output {
    fx10_env(args, &[])
}

fn code(out: &Output) -> i32 {
    out.status.code().unwrap_or(-1)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Drops the run-shape preamble (`jobs: ...` / `shards: ...`) so that
/// sequential and socket-sharded runs compare byte for byte on the
/// answer: state count, terminals, verdict, MHP pairs, digest.
fn answer(out: &Output) -> String {
    stdout(out)
        .lines()
        .filter(|l| !l.starts_with("jobs:") && !l.starts_with("shards:"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn temp_dir_for(tag: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("fx10-net-{tag}-{}-{n}", std::process::id()))
        .display()
        .to_string()
}

const WIDE: &str = "programs/chaos_wide.fx10";

fn sequential_reference() -> Output {
    let out = fx10(&["explore", WIDE, "--digest-xor"]);
    assert_eq!(code(&out), 0, "{out:?}");
    out
}

// -- differential oracle over TCP --------------------------------------------

/// The socket transport reproduces the sequential digest, MHP set and
/// verdict byte for byte at every fleet width.
#[test]
fn tcp_sharded_answer_is_byte_identical_at_shards_1_2_4() {
    let reference = sequential_reference();
    for shards in ["1", "2", "4"] {
        let out = fx10(&[
            "explore",
            WIDE,
            "--digest-xor",
            "--shards",
            shards,
            "--listen",
            "127.0.0.1:0",
        ]);
        assert_eq!(code(&out), 0, "--shards {shards}: {out:?}");
        assert!(
            stderr(&out).contains("listening on 127.0.0.1:"),
            "{}",
            stderr(&out)
        );
        assert_eq!(
            answer(&out),
            answer(&reference),
            "TCP --shards {shards} diverged from the sequential reference"
        );
    }
}

/// Seeded drop, duplication and delay all at once: retransmission heals
/// the losses, the redelivery window swallows the duplicates, and the
/// answer does not move.
#[test]
fn tcp_chaos_drop_dup_delay_is_byte_identical() {
    let reference = sequential_reference();
    let out = fx10_env(
        &[
            "explore",
            WIDE,
            "--digest-xor",
            "--shards",
            "2",
            "--listen",
            "127.0.0.1:0",
        ],
        &[
            ("FX10_NET_DROP", "15:42"),
            ("FX10_NET_DUP", "10"),
            ("FX10_NET_DELAY_MS", "1"),
        ],
    );
    assert_eq!(code(&out), 0, "{out:?}");
    assert_eq!(
        answer(&out),
        answer(&reference),
        "drop+dup+delay chaos must not change the answer"
    );
}

/// A one-way partition big enough to outlast retransmission: the
/// supervisor's heartbeat expires, the connection is dropped, the
/// worker redials (the healed network), unacked frames are replayed,
/// and the answer is still byte-identical.
#[test]
fn tcp_partition_forces_reconnect_and_converges() {
    let reference = sequential_reference();
    let out = fx10_env(
        &[
            "explore",
            WIDE,
            "--digest-xor",
            "--shards",
            "2",
            "--listen",
            "127.0.0.1:0",
        ],
        &[("FX10_NET_PARTITION", "1:1000000")],
    );
    assert_eq!(code(&out), 0, "{out:?}");
    let e = stderr(&out);
    assert!(
        e.contains("connection lost"),
        "the partition must trip the heartbeat: {e}"
    );
    assert!(
        e.contains("reconnected"),
        "the worker must redial after the drop: {e}"
    );
    assert_eq!(
        answer(&out),
        answer(&reference),
        "a healed partition must not change the answer"
    );
}

/// A worker SIGKILLed mid-run over TCP restarts from its durable
/// checkpoint — process supervision and connection supervision compose.
#[test]
fn tcp_killed_worker_restarts_from_checkpoint() {
    let reference = sequential_reference();
    let ck = temp_dir_for("tcp-kill");
    let out = fx10_env(
        &[
            "explore",
            WIDE,
            "--digest-xor",
            "--shards",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--checkpoint",
            &ck,
            "--checkpoint-every",
            "200",
        ],
        &[("FX10_SHARD_KILL", "1:1")],
    );
    assert_eq!(code(&out), 0, "{out:?}");
    let s = stdout(&out);
    assert!(s.contains("1 restart(s)"), "{s}\n{}", stderr(&out));
    assert_eq!(
        answer(&out),
        answer(&reference),
        "a killed socket worker must not change the answer"
    );
    let _ = std::fs::remove_dir_all(&ck);
}

// -- handshake vetting against a live supervisor -----------------------------

/// Spawns a supervisor on port 0, scrapes the bound port off its live
/// stderr line, and returns the child plus a reader thread collecting
/// the rest of stderr.
fn spawn_supervisor(
    extra_args: &[&str],
    envs: &[(&str, &str)],
) -> (
    std::process::Child,
    u16,
    std::thread::JoinHandle<String>,
) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fx10"));
    cmd.current_dir(repo_root())
        .args([
            "explore",
            WIDE,
            "--digest-xor",
            "--shards",
            "2",
            "--listen",
            "127.0.0.1:0",
        ])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("binary runs");
    let err = child.stderr.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut all = String::new();
        for line in BufReader::new(err).lines() {
            let line = line.unwrap_or_default();
            if let Some(addr) = line.strip_prefix("shards: listening on ") {
                let port = addr.rsplit(':').next().unwrap().parse::<u16>().unwrap();
                let _ = tx.send(port);
            }
            all.push_str(&line);
            all.push('\n');
        }
        all
    });
    let port = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("supervisor prints its bound port");
    (child, port, reader)
}

/// While a secret-protected run is in flight, a client with the wrong
/// secret is rejected with the AUTH code, and a version-skewed HELLO is
/// rejected with the VERSION code — and the legitimate fleet still
/// completes with the sequential answer.
#[test]
fn foreign_and_skewed_clients_are_rejected_while_the_run_completes() {
    let reference = sequential_reference();
    let secret_path = format!("{}.secret", temp_dir_for("secret"));
    std::fs::write(&secret_path, b"wide-open-loopback\n").unwrap();

    let (mut child, port, reader) =
        spawn_supervisor(&["--secret-file", &secret_path], &[]);
    let addr = format!("127.0.0.1:{port}");

    // Wrong shared secret: the full client handshake runs, the MAC does
    // not verify, and the typed reject names the AUTH code.
    let mut stream = TcpStream::connect(&addr).expect("supervisor is listening");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let hello = Hello {
        proto: ipc::PROTOCOL_VERSION,
        slot: 0,
        boot_id: 0xB0B,
        fingerprint: 0,
    };
    let err = conn::client_handshake(&mut stream, b"not-the-secret", &hello, ipc::MAX_FRAME_LEN)
        .expect_err("a foreign client must not authenticate");
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("code {}", reject::AUTH)) && msg.contains("MAC"),
        "{msg}"
    );

    // Version skew: rejected straight off the HELLO, before any
    // challenge is issued.
    let mut stream = TcpStream::connect(&addr).expect("supervisor is listening");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let skewed = Hello {
        proto: 999,
        ..hello
    };
    ipc::write_frame(
        &mut stream,
        &WireMsg::new(kind::HELLO, 0, ipc::hello_body(&skewed)),
    )
    .unwrap();
    let msg = ipc::read_frame(&mut stream, ipc::MAX_FRAME_LEN)
        .expect("reject frame decodes")
        .expect("supervisor answers before closing");
    assert_eq!(msg.kind, kind::REJECT);
    let (code_, why) = ipc::parse_reject_body(&msg.body).unwrap();
    assert_eq!(code_, reject::VERSION, "{why}");
    assert!(why.contains("version skew"), "{why}");

    // The run itself is untouched by the rejected intruders.
    let status = child.wait().expect("supervisor exits");
    assert_eq!(status.code(), Some(0));
    let mut out = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut out)
        .unwrap();
    let e = reader.join().unwrap();
    assert!(e.contains("rejected connection"), "{e}");
    let got = out
        .lines()
        .filter(|l| !l.starts_with("jobs:") && !l.starts_with("shards:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(got, answer(&reference));
    let _ = std::fs::remove_file(&secret_path);
}

// -- flag and hook audit -----------------------------------------------------

/// The socket-transport flags obey the usage contract on the supervisor
/// side: every misuse is exit 2 with a message naming the fix.
#[test]
fn listen_flag_misuse_exits_2() {
    // --listen without --shards.
    let out = fx10(&["explore", WIDE, "--listen", "127.0.0.1:0"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("requires --shards"), "{}", stderr(&out));

    // A value that is not HOST:PORT.
    let out = fx10(&["explore", WIDE, "--shards", "2", "--listen", "nonsense"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("bad --listen address"), "{}", stderr(&out));

    // A missing value.
    let out = fx10(&["explore", WIDE, "--shards", "2", "--listen"]);
    assert_eq!(code(&out), 2, "{out:?}");

    // --secret-file and --reconnects without --listen.
    let out = fx10(&["explore", WIDE, "--shards", "2", "--secret-file", "/dev/null"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("requires --listen"), "{}", stderr(&out));
    let out = fx10(&["explore", WIDE, "--shards", "2", "--reconnects", "3"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("requires --listen"), "{}", stderr(&out));

    // A reconnect budget that is not a number.
    let out = fx10(&[
        "explore", WIDE, "--shards", "2", "--listen", "127.0.0.1:0", "--reconnects", "many",
    ]);
    assert_eq!(code(&out), 2, "{out:?}");

    // --connect is the worker's flag, valid on no public command.
    let out = fx10(&["explore", WIDE, "--connect", "127.0.0.1:9"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("is not valid for"), "{}", stderr(&out));

    // --listen on a non-exploring command: the cross-flag contract
    // (`--listen` needs `--shards`) fires first when --shards is absent,
    // and the per-command audit rejects the pair when it is present.
    let out = fx10(&["mhp", "programs/example22.fx10", "--listen", "127.0.0.1:0"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("requires --shards"), "{}", stderr(&out));
    let out = fx10(&[
        "mhp", "programs/example22.fx10", "--shards", "2", "--listen", "127.0.0.1:0",
    ]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("is not valid for"), "{}", stderr(&out));
}

/// The network chaos hooks are rejected loudly wherever they cannot
/// take effect — a fault you planned must never be silently skipped.
#[test]
fn net_chaos_hooks_are_gated_on_the_socket_transport() {
    let hooks = [
        ("FX10_NET_DROP", "10"),
        ("FX10_NET_DUP", "10"),
        ("FX10_NET_DELAY_MS", "1"),
        ("FX10_NET_PARTITION", "1:5"),
    ];
    for (var, val) in hooks {
        // On non-exploring commands.
        for cmd in ["parse", "mhp", "lint"] {
            let out = fx10_env(&[cmd, "programs/example22.fx10"], &[(var, val)]);
            assert_eq!(code(&out), 2, "{var} on {cmd}: {out:?}");
            assert!(stderr(&out).contains(var), "{var} on {cmd}: {}", stderr(&out));
        }
        // On an exploring command without the socket transport.
        let out = fx10_env(&["explore", WIDE, "--shards", "2"], &[(var, val)]);
        assert_eq!(code(&out), 2, "{var} without --listen: {out:?}");
        assert!(
            stderr(&out).contains("--listen"),
            "{var}: {}",
            stderr(&out)
        );
    }
}

/// Malformed chaos-hook values are usage errors, not silently-disabled
/// faults.
#[test]
fn malformed_net_hooks_exit_2() {
    for (key, val) in [
        ("FX10_NET_DROP", "abc"),
        ("FX10_NET_DROP", "150"),
        ("FX10_NET_DROP", "10:zz"),
        ("FX10_NET_DUP", "-3"),
        ("FX10_NET_DELAY_MS", "soon"),
        ("FX10_NET_PARTITION", "1"),
        ("FX10_NET_PARTITION", "one:5"),
    ] {
        let out = fx10_env(
            &["explore", WIDE, "--shards", "2", "--listen", "127.0.0.1:0"],
            &[(key, val)],
        );
        assert_eq!(code(&out), 2, "{key}={val}: {out:?}");
        assert!(stderr(&out).contains(key), "{key}: {}", stderr(&out));
    }
}

/// The worker-side net mode parses its tail as strictly as the public
/// CLI, and fails fast (exit 1, no retry storm) on a dead supervisor
/// address when its reconnect budget is zero.
#[test]
fn shard_worker_net_mode_misuse_and_dead_port() {
    // Unknown option.
    let out = fx10(&["shard-worker", "--connect", "127.0.0.1:9", "--slot", "0", "--bogus"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("--bogus"), "{}", stderr(&out));

    // Missing --slot.
    let out = fx10(&["shard-worker", "--connect", "127.0.0.1:9"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("--slot"), "{}", stderr(&out));

    // A bad address.
    let out = fx10(&["shard-worker", "--connect", "nowhere", "--slot", "0"]);
    assert_eq!(code(&out), 2, "{out:?}");
    assert!(stderr(&out).contains("bad --connect address"), "{}", stderr(&out));

    // Nobody listening on the port and no reconnect budget: exit 1.
    let out = fx10(&[
        "shard-worker", "--connect", "127.0.0.1:1", "--slot", "0", "--reconnects", "0",
    ]);
    assert_eq!(code(&out), 1, "{out:?}");
}
