//! Constraint generation for the condensed form.
//!
//! The paper generates constraints for full X10 via the condensed form:
//! "The constraints for FX10 are all we need to \[do\] type inference for
//! the full X10 language; the remaining constructs generate constraints
//! that are similar to those for FX10" (§5.3). This module defines those
//! "similar" constraints precisely (see DESIGN.md §6):
//!
//! - `end`, `skip`, `return` behave like FX10's `skip`;
//! - `async` (including place-switching), `finish`, `loop` and `call`
//!   follow constraints (72)–(82) with `loop` = `while`;
//! - `if`/`switch` analyze every branch under the same `R` and join:
//!   `o = ∪ o_branch`, `m = Lcross(l, r) ∪ ∪ m_branch`;
//! - `return` additionally feeds its `r` into the method's `o_i` (labels
//!   still running at an early exit may be running when the call
//!   returns); code after a `return` is analyzed anyway (conservative).
//!
//! The same three-phase pipeline as the core crate applies: solve the
//! `Slabels` equations, generate and solve level-1, substitute and solve
//! level-2. All solver machinery is reused from `fx10-core`.

use crate::condensed::{CBlock, CFuncId, CNodeKind, CProgram};
use fx10_core::analysis::{AnalysisStats, SolverKind};
use fx10_core::sets::{LabelSet, PairSet, SharedLabelSet};
use fx10_core::solver::{
    solve_pair_naive_budgeted, solve_pair_worklist_budgeted, solve_set_naive_budgeted,
    solve_set_worklist_budgeted, PairConstraint, PairSystem, PairTerm, PairVar, SetConstraint,
    SetSolution, SetSystem, SetTerm, SetVar,
};
use fx10_core::Mode;
use fx10_robust::{Budget, BudgetMeter, CancelToken, Exhaustion, Fx10Error, Stop};
use fx10_syntax::Label;
use std::sync::Arc;

/// A symbolic level-2 term for the condensed form.
#[derive(Debug, Clone)]
enum SymTerm {
    Lcross(Label, SetVar),
    /// `symcross(const, var)` where the constant is a solved Slabels set.
    SymcrossConst(SharedLabelSet, SetVar),
    MVar(PairVar),
}

/// One async site of a condensed program, with its body's label set —
/// what the Figure 8 pair report needs.
#[derive(Debug, Clone)]
pub struct CAsyncSite {
    /// The async node's label.
    pub label: Label,
    /// `Slabels` of the async body.
    pub body_labels: LabelSet,
    /// Enclosing method.
    pub method: CFuncId,
}

/// A solved analysis of a condensed program.
#[derive(Debug, Clone)]
pub struct CondensedAnalysis {
    /// Analysis mode.
    pub mode: Mode,
    /// `M_i` per method.
    pub m_methods: Vec<PairSet>,
    /// `O_i` per method.
    pub o_methods: Vec<LabelSet>,
    /// Main method index.
    pub main: CFuncId,
    /// Async sites (for the pair report).
    pub asyncs: Vec<CAsyncSite>,
    /// Counters matching Figures 6 and 8.
    pub stats: AnalysisStats,
    /// `Some` when a budget cut a solver phase short: the sets are then a
    /// sound under-approximation of the analysis's answer.
    pub exhausted: Option<Exhaustion>,
}

impl CondensedAnalysis {
    /// `M` of the main method — the program's MHP approximation.
    pub fn mhp(&self) -> &PairSet {
        &self.m_methods[self.main.index()]
    }

    /// May labels `a` and `b` happen in parallel?
    pub fn may_happen_in_parallel(&self, a: Label, b: Label) -> bool {
        self.mhp().contains(a, b)
    }
}

struct GenState<'a> {
    p: &'a CProgram,
    n: usize,
    u: usize,
    mode: Mode,
    slab: Option<SetSolution>,
    l1: Vec<SetConstraint>,
    l2: Vec<(PairVar, Vec<SymTerm>)>,
    /// Per method: extra `o_i ⊇ …` terms from return nodes.
    method_o_terms: Vec<Vec<SetTerm>>,
    /// Enclosing method of each node label (for constraint ordering).
    label_method: Vec<u32>,
    asyncs: Vec<CAsyncSite>,
    current_method: CFuncId,
}

impl<'a> GenState<'a> {
    fn new(p: &'a CProgram, mode: Mode) -> Self {
        let mut label_method = vec![0u32; p.label_count()];
        p.for_each_node(|f, node| label_method[node.label.index()] = f.0);
        GenState {
            p,
            n: p.label_count(),
            u: p.method_count(),
            mode,
            slab: None,
            l1: Vec::new(),
            l2: Vec::new(),
            method_o_terms: vec![Vec::new(); p.method_count()],
            asyncs: Vec::new(),
            current_method: CFuncId(0),
            label_method,
        }
    }

    /// Orders constraints so that the naive round-robin solver converges
    /// in few passes, matching the paper's small iteration counts: later
    /// methods first (callees precede callers under the generators'
    /// forward call edges), and within a method later labels first (a
    /// suffix's set is computed before the prefixes that include it).
    /// The solved values are order-independent; only pass counts change.
    fn rank(&self, lhs_index: usize, n_for_kind: usize) -> u64 {
        let (method, sub) = if lhs_index >= n_for_kind {
            ((lhs_index - n_for_kind) as u32, u32::MAX)
        } else {
            (
                self.label_method[lhs_index],
                (n_for_kind - lhs_index) as u32,
            )
        };
        (((self.u as u32).saturating_sub(1 + method)) as u64) << 32 | sub as u64
    }

    // ---- variable layout --------------------------------------------
    fn rest(&self, l: Label) -> SetVar {
        SetVar(l.0)
    }
    fn slab_method(&self, f: CFuncId) -> SetVar {
        SetVar((self.n + f.index()) as u32)
    }
    fn slab_empty(&self) -> SetVar {
        SetVar((self.n + self.u) as u32)
    }
    fn r(&self, l: Label) -> SetVar {
        SetVar(2 * l.0)
    }
    fn o(&self, l: Label) -> SetVar {
        SetVar(2 * l.0 + 1)
    }
    fn oi(&self, f: CFuncId) -> SetVar {
        SetVar((2 * self.n + f.index()) as u32)
    }
    fn ri(&self, f: CFuncId) -> SetVar {
        SetVar((2 * self.n + self.u + f.index()) as u32)
    }
    fn m(&self, l: Label) -> PairVar {
        PairVar(l.0)
    }
    fn mi(&self, f: CFuncId) -> PairVar {
        PairVar((self.n + f.index()) as u32)
    }

    // ---- phase A: Slabels -------------------------------------------
    /// Emits rest-var equations for a block; returns the var holding
    /// `Slabels(block) ∪ value(cont)`.
    fn slab_block(&mut self, b: &CBlock, cont: SetVar, out: &mut Vec<SetConstraint>) -> SetVar {
        let mut next = cont;
        for node in b.nodes.iter().rev() {
            let v = self.rest(node.label);
            let mut terms = vec![
                SetTerm::Const(Arc::new(LabelSet::singleton(self.n, node.label))),
                SetTerm::Var(next),
            ];
            match &node.kind {
                CNodeKind::Async { body, .. }
                | CNodeKind::Finish { body }
                | CNodeKind::Loop { body } => {
                    let empty = self.slab_empty();
                    let bv = self.slab_block(body, empty, out);
                    if bv != empty {
                        terms.push(SetTerm::Var(bv));
                    }
                }
                CNodeKind::If { then_, else_ } => {
                    for branch in [then_, else_] {
                        let bv = self.slab_block(branch, next, out);
                        if bv != next {
                            terms.push(SetTerm::Var(bv));
                        }
                    }
                }
                CNodeKind::Switch { cases } => {
                    for case in cases {
                        let bv = self.slab_block(case, next, out);
                        if bv != next {
                            terms.push(SetTerm::Var(bv));
                        }
                    }
                }
                CNodeKind::Call { callee } => {
                    terms.push(SetTerm::Var(self.slab_method(*callee)));
                }
                CNodeKind::End | CNodeKind::Skip | CNodeKind::Return => {}
            }
            out.push(SetConstraint { lhs: v, terms });
            next = v;
        }
        next
    }

    fn solve_slabels(
        &mut self,
        solver: SolverKind,
        meter: &mut BudgetMeter,
    ) -> Result<(usize, usize, usize), Fx10Error> {
        let mut constraints = Vec::new();
        let mut firsts = Vec::with_capacity(self.u);
        let methods: Vec<CBlock> = self.p.methods().iter().map(|m| m.body.clone()).collect();
        for body in &methods {
            let empty = self.slab_empty();
            let first = self.slab_block(body, empty, &mut constraints);
            firsts.push(first);
        }
        for (i, first) in firsts.into_iter().enumerate() {
            constraints.push(SetConstraint {
                lhs: self.slab_method(CFuncId(i as u32)),
                terms: vec![SetTerm::Var(first)],
            });
        }
        let count = constraints.len();
        constraints.sort_by_key(|c| self.rank(c.lhs.index(), self.n));
        let sys = SetSystem {
            n_vars: self.n + self.u + 1,
            universe: self.n,
            constraints,
        };
        let sol = match solver {
            SolverKind::Naive => solve_set_naive_budgeted(&sys, meter)?,
            _ => solve_set_worklist_budgeted(&sys, meter)?,
        };
        let (passes, evals) = (sol.passes, sol.evals);
        self.slab = Some(sol);
        Ok((count, passes, evals))
    }

    fn slab_of_block(&self, b: &CBlock) -> LabelSet {
        match b.nodes.first() {
            Some(n) => self.slab.as_ref().unwrap().get(self.rest(n.label)).clone(),
            None => LabelSet::empty(self.n),
        }
    }

    /// The solved `Slabels` constant held by a phase-A variable.
    fn slab_const(&self, v: SetVar) -> SharedLabelSet {
        Arc::new(self.slab.as_ref().unwrap().get(v).clone())
    }

    // ---- phases B+C: level-1 and symbolic level-2 --------------------
    /// Generates constraints for a non-empty block.
    ///
    /// `r_seed` — terms seeding the first node's `r`;
    /// `cont_slab` — phase-A var for `Slabels` of the code following the
    /// block (used by async nodes near the block end).
    ///
    /// Returns `(o_out, m_first)`; `None` when the block is empty.
    fn gen_block(
        &mut self,
        b: &CBlock,
        r_seed: Vec<SetTerm>,
        cont_slab: SetVar,
    ) -> Option<(SetVar, PairVar)> {
        b.nodes.first()?;
        let mut prev_o: Option<SetVar> = None;
        let mut node_ms: Vec<(PairVar, Vec<SymTerm>)> = Vec::with_capacity(b.nodes.len());

        for (i, node) in b.nodes.iter().enumerate() {
            let l = node.label;
            let r_node = self.r(l);
            let o_node = self.o(l);
            // Chain r: first node gets the seed, later nodes the previous o.
            let terms = match prev_o {
                None => r_seed.clone(),
                Some(po) => vec![SetTerm::Var(po)],
            };
            self.l1.push(SetConstraint { lhs: r_node, terms });

            // Slabels of the continuation after this node (phase-A var).
            let next_slab = match b.nodes.get(i + 1) {
                Some(nn) => self.rest(nn.label),
                None => cont_slab,
            };

            let mut m_terms: Vec<SymTerm> = vec![SymTerm::Lcross(l, r_node)];
            match &node.kind {
                CNodeKind::End | CNodeKind::Skip => {
                    self.l1.push(SetConstraint {
                        lhs: o_node,
                        terms: vec![SetTerm::Var(r_node)],
                    });
                }
                CNodeKind::Return => {
                    self.l1.push(SetConstraint {
                        lhs: o_node,
                        terms: vec![SetTerm::Var(r_node)],
                    });
                    // Labels live at the early exit may be live when the
                    // call returns.
                    self.method_o_terms[self.current_method.index()].push(SetTerm::Var(r_node));
                }
                CNodeKind::Async { body, .. } => {
                    let body_slab = self.slab_of_block(body);
                    self.asyncs.push(CAsyncSite {
                        label: l,
                        body_labels: body_slab.clone(),
                        method: self.current_method,
                    });
                    // (72): r_body = Slabels(continuation) ∪ r_s.
                    let cont_const = self.slab_const(next_slab);
                    let empty = self.slab_empty();
                    if let Some((_o_body, m_body)) = self.gen_block(
                        body,
                        vec![SetTerm::Const(cont_const), SetTerm::Var(r_node)],
                        empty,
                    ) {
                        m_terms.push(SymTerm::MVar(m_body));
                    }
                    // (73)/(74) collapsed into the node chain:
                    // o = Slabels(body) ∪ r, so the continuation's r picks
                    // up the body labels.
                    self.l1.push(SetConstraint {
                        lhs: o_node,
                        terms: vec![SetTerm::Const(Arc::new(body_slab)), SetTerm::Var(r_node)],
                    });
                }
                CNodeKind::Finish { body } => {
                    // (76)–(79): body typed with r; its o discarded.
                    let empty = self.slab_empty();
                    if let Some((_o_body, m_body)) =
                        self.gen_block(body, vec![SetTerm::Var(r_node)], empty)
                    {
                        m_terms.push(SymTerm::MVar(m_body));
                    }
                    self.l1.push(SetConstraint {
                        lhs: o_node,
                        terms: vec![SetTerm::Var(r_node)],
                    });
                }
                CNodeKind::Loop { body } => {
                    // (68)–(71), loop = while: body assumed to run ≥ 2×.
                    let body_slab = Arc::new(self.slab_of_block(body));
                    let empty = self.slab_empty();
                    let o_body = match self.gen_block(body, vec![SetTerm::Var(r_node)], empty) {
                        Some((o_body, m_body)) => {
                            m_terms.push(SymTerm::MVar(m_body));
                            o_body
                        }
                        None => r_node,
                    };
                    self.l1.push(SetConstraint {
                        lhs: o_node,
                        terms: vec![SetTerm::Var(o_body)],
                    });
                    // m uses Lcross(l, O1) — replace the default r term.
                    m_terms[0] = SymTerm::Lcross(l, o_body);
                    m_terms.push(SymTerm::SymcrossConst(body_slab, o_body));
                }
                CNodeKind::Call { callee } => {
                    if self.mode.is_ci() {
                        // (83): r_i ⊇ r_s.
                        self.l1.push(SetConstraint {
                            lhs: self.ri(*callee),
                            terms: vec![SetTerm::Var(r_node)],
                        });
                    }
                    // (80)/(81) collapsed: o = r ∪ o_i.
                    self.l1.push(SetConstraint {
                        lhs: o_node,
                        terms: vec![SetTerm::Var(r_node), SetTerm::Var(self.oi(*callee))],
                    });
                    // (82): symcross(Slabels(p(f_i)), r_s) ∪ m_i.
                    let keep_scross = match self.mode {
                        Mode::ContextSensitive => true,
                        Mode::ContextInsensitive { keep_scross } => keep_scross,
                    };
                    if keep_scross {
                        let callee_slab = self.slab_const(self.slab_method(*callee));
                        m_terms.push(SymTerm::SymcrossConst(callee_slab, r_node));
                    }
                    m_terms.push(SymTerm::MVar(self.mi(*callee)));
                }
                CNodeKind::If { then_, else_ } => {
                    let mut o_terms = Vec::new();
                    for branch in [then_, else_] {
                        match self.gen_block(branch, vec![SetTerm::Var(r_node)], next_slab) {
                            Some((o_b, m_b)) => {
                                o_terms.push(SetTerm::Var(o_b));
                                m_terms.push(SymTerm::MVar(m_b));
                            }
                            None => o_terms.push(SetTerm::Var(r_node)),
                        }
                    }
                    self.l1.push(SetConstraint {
                        lhs: o_node,
                        terms: o_terms,
                    });
                }
                CNodeKind::Switch { cases } => {
                    let mut o_terms = Vec::new();
                    if cases.is_empty() {
                        o_terms.push(SetTerm::Var(r_node));
                    }
                    for case in cases.clone() {
                        match self.gen_block(&case, vec![SetTerm::Var(r_node)], next_slab) {
                            Some((o_b, m_b)) => {
                                o_terms.push(SetTerm::Var(o_b));
                                m_terms.push(SymTerm::MVar(m_b));
                            }
                            None => o_terms.push(SetTerm::Var(r_node)),
                        }
                    }
                    self.l1.push(SetConstraint {
                        lhs: o_node,
                        terms: o_terms,
                    });
                }
            }

            node_ms.push((self.m(l), m_terms));
            prev_o = Some(o_node);
        }

        // Chain m: m(node_i) ⊇ m(node_{i+1}) (FX10-style suffix m sets).
        for i in 0..node_ms.len().saturating_sub(1) {
            let next_m = node_ms[i + 1].0;
            node_ms[i].1.push(SymTerm::MVar(next_m));
        }
        let first_m = node_ms.first().map(|(v, _)| *v);
        self.l2.extend(node_ms);

        Some((prev_o.unwrap(), first_m.unwrap()))
    }
}

/// Runs the full analysis pipeline on a condensed program. Infallible
/// legacy entry point (unlimited budget).
pub fn analyze_condensed(p: &CProgram, mode: Mode, solver: SolverKind) -> CondensedAnalysis {
    // An unlimited budget and an uncancellable token cannot trip.
    analyze_condensed_budgeted(p, mode, solver, Budget::unlimited(), &CancelToken::new())
        .expect("condensed analysis with an unlimited budget cannot fail")
}

/// [`analyze_condensed`] under a [`Budget`], observing `cancel`. Budget
/// exhaustion tags the (partial, under-approximate) result; cancellation
/// returns `Err`.
pub fn analyze_condensed_budgeted(
    p: &CProgram,
    mode: Mode,
    solver: SolverKind,
    budget: Budget,
    cancel: &CancelToken,
) -> Result<CondensedAnalysis, Fx10Error> {
    let start = std::time::Instant::now();
    let mut meter = BudgetMeter::new(budget, cancel.clone());
    let n = p.label_count();
    let u = p.method_count();
    let mut g = GenState::new(p, mode);

    // Phase A.
    let (slab_count, slab_passes, slab_evals) = g.solve_slabels(solver, &mut meter)?;
    let slab_exhausted = g.slab.as_ref().and_then(|s| s.exhausted);
    if let Err(stop @ Stop::Cancelled) = meter.checkpoint() {
        return Err(stop.into());
    }

    // Phases B+C: generate.
    let bodies: Vec<CBlock> = p.methods().iter().map(|m| m.body.clone()).collect();
    for (i, body) in bodies.iter().enumerate() {
        let f = CFuncId(i as u32);
        g.current_method = f;
        // (57)/(84): seed for the method body's first r.
        let seed = if mode.is_ci() {
            vec![SetTerm::Var(g.ri(f))]
        } else {
            vec![]
        };
        let empty = g.slab_empty();
        let gen_out = g.gen_block(body, seed, empty);
        // (58): o_i ⊇ o at body end ∪ r at each return.
        let mut terms = std::mem::take(&mut g.method_o_terms[i]);
        match gen_out {
            Some((o_out, m_first)) => {
                terms.push(SetTerm::Var(o_out));
                // (59): m_i = m of body.
                g.l2.push((g.mi(f), vec![SymTerm::MVar(m_first)]));
            }
            None => {
                // Empty body: nothing runs; o_i ⊇ r_i under CI.
                if mode.is_ci() {
                    terms.push(SetTerm::Var(g.ri(f)));
                }
                g.l2.push((g.mi(f), vec![]));
            }
        }
        g.l1.push(SetConstraint {
            lhs: g.oi(f),
            terms,
        });
    }

    // Solve level-1.
    let l1_sys = SetSystem {
        n_vars: 2 * n + u + if mode.is_ci() { u } else { 0 },
        universe: n,
        constraints: std::mem::take(&mut g.l1),
    };
    let l1 = match solver {
        SolverKind::Naive => solve_set_naive_budgeted(&l1_sys, &mut meter)?,
        _ => solve_set_worklist_budgeted(&l1_sys, &mut meter)?,
    };
    if let Err(stop @ Stop::Cancelled) = meter.checkpoint() {
        return Err(stop.into());
    }

    // Simplify and solve level-2 (ordered for fast convergence; see rank).
    let mut l2_sorted = std::mem::take(&mut g.l2);
    l2_sorted.sort_by_key(|(lhs, _)| g.rank(lhs.index(), n));
    g.l2 = l2_sorted;
    let l2_sys = PairSystem {
        n_vars: n + u,
        universe: n,
        constraints: g
            .l2
            .iter()
            .map(|(lhs, terms)| PairConstraint {
                lhs: *lhs,
                terms: terms
                    .iter()
                    .map(|t| match t {
                        SymTerm::Lcross(l, v) => PairTerm::Lcross(*l, Arc::new(l1.get(*v).clone())),
                        SymTerm::SymcrossConst(c, v) => {
                            PairTerm::Symcross(c.clone(), Arc::new(l1.get(*v).clone()))
                        }
                        SymTerm::MVar(v) => PairTerm::MVar(*v),
                    })
                    .collect(),
            })
            .collect(),
    };
    let l2 = match solver {
        SolverKind::Naive => solve_pair_naive_budgeted(&l2_sys, &mut meter)?,
        SolverKind::Worklist => solve_pair_worklist_budgeted(&l2_sys, &mut meter)?,
        SolverKind::Scc => fx10_core::scc::solve_pair_scc_budgeted(&l2_sys, &mut meter)?,
        SolverKind::SccParallel(t) => {
            let sol = fx10_core::scc::solve_pair_scc_parallel_budgeted(
                &l2_sys,
                t,
                meter.budget(),
                cancel,
                &fx10_robust::FaultPlan::none(),
            )?;
            let _ = meter.charge(sol.evals as u64);
            sol
        }
    };

    let stats = AnalysisStats {
        slabels_constraints: slab_count,
        level1_constraints: l1_sys.constraints.len(),
        level2_constraints: l2_sys.constraints.len(),
        slabels_passes: slab_passes,
        level1_passes: l1.passes,
        level2_passes: l2.passes,
        evals: slab_evals + l1.evals + l2.evals,
        bytes: g.slab.as_ref().map(|s| s.bytes()).unwrap_or(0) + l1.bytes() + l2.bytes(),
        millis: start.elapsed().as_secs_f64() * 1e3,
    };

    let exhausted = slab_exhausted
        .or(l1.exhausted)
        .or(l2.exhausted)
        .or(meter.exhaustion());
    Ok(CondensedAnalysis {
        mode,
        m_methods: (0..u)
            .map(|i| l2.get(PairVar((n + i) as u32)).clone())
            .collect(),
        o_methods: (0..u)
            .map(|i| l1.get(SetVar((2 * n + i) as u32)).clone())
            .collect(),
        main: p.main(),
        asyncs: std::mem::take(&mut g.asyncs),
        stats,
        exhausted,
    })
}

/// The Figure 8 async-body pair report for a condensed program, with the
/// same *self*/*same*/*diff* categorization as
/// [`fx10_core::report::async_pairs`].
pub fn async_pairs_condensed(ca: &CondensedAnalysis) -> fx10_core::report::AsyncPairReport {
    use fx10_core::report::{AsyncPair, AsyncPairReport, PairCategory};
    let m = ca.mhp();
    let mut report = AsyncPairReport::default();
    for (i, si) in ca.asyncs.iter().enumerate() {
        if si.body_labels.iter().any(|x| m.contains(x, x)) {
            report.pairs.push(AsyncPair {
                a: si.label,
                b: si.label,
                category: PairCategory::SelfPair,
            });
            report.self_pairs += 1;
        }
        for sj in ca.asyncs.iter().skip(i + 1) {
            let overlap = si
                .body_labels
                .iter()
                .any(|x| m.row_intersects(x, &sj.body_labels));
            if overlap {
                let category = if si.method == sj.method {
                    report.same_method += 1;
                    PairCategory::SameMethod
                } else {
                    report.diff_method += 1;
                    PairCategory::DiffMethod
                };
                report.pairs.push(AsyncPair {
                    a: si.label,
                    b: sj.label,
                    category,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condensed::CAst;

    fn prog(methods: Vec<(&str, Vec<CAst>)>) -> CProgram {
        CProgram::new(
            methods
                .into_iter()
                .map(|(n, b)| (n.to_string(), b))
                .collect(),
            10,
        )
        .unwrap()
    }

    fn cs(p: &CProgram) -> CondensedAnalysis {
        analyze_condensed(p, Mode::ContextSensitive, SolverKind::Naive)
    }

    /// The §2.2 example expressed in condensed form must behave as in
    /// FX10: the CS analysis finds no (S3, S4)-style pair, CI does.
    #[test]
    fn condensed_matches_fx10_on_example_2_2_shape() {
        let mk = || {
            prog(vec![
                (
                    "f",
                    vec![CAst::Async(vec![CAst::Skip], false)], // A5 { S5 }
                ),
                (
                    "main",
                    vec![
                        CAst::Finish(vec![
                            CAst::Async(vec![CAst::Skip], false), // A3 { S3 }
                            CAst::Call("f".into()),
                        ]),
                        CAst::Finish(vec![
                            CAst::Call("f".into()),
                            CAst::Async(vec![CAst::Skip], false), // A4 { S4 }
                        ]),
                    ],
                ),
            ])
        };
        let p = mk();
        // Find labels: S3 is the body of the first async in main; S4 the
        // body of the second.
        let mut asyncs_in_main = Vec::new();
        p.for_each_node(|f, n| {
            if f == p.main() {
                if let CNodeKind::Async { body, .. } = &n.kind {
                    asyncs_in_main.push(body.nodes[0].label);
                }
            }
        });
        let (s3, s4) = (asyncs_in_main[0], asyncs_in_main[1]);

        let a = cs(&p);
        assert!(
            !a.may_happen_in_parallel(s3, s4),
            "CS must separate call sites"
        );
        let ci = analyze_condensed(
            &p,
            Mode::ContextInsensitive { keep_scross: true },
            SolverKind::Naive,
        );
        assert!(ci.may_happen_in_parallel(s3, s4), "CI merges call sites");
        // And the pair report sees exactly 2 diff pairs under CS (A5×A3,
        // A5×A4) vs 3 under CI (adds A3×A4).
        let rep = async_pairs_condensed(&a);
        assert_eq!(
            (rep.self_pairs, rep.same_method, rep.diff_method),
            (0, 0, 2)
        );
        let rep = async_pairs_condensed(&ci);
        assert_eq!(
            (rep.self_pairs, rep.same_method, rep.diff_method),
            (0, 1, 2)
        );
    }

    #[test]
    fn if_branches_join() {
        // if (?) { async {S} } else { skip }  K
        // The async body may run in parallel with K regardless of branch.
        let p = prog(vec![(
            "main",
            vec![
                CAst::If(vec![CAst::Async(vec![CAst::Skip], false)], vec![CAst::Skip]),
                CAst::Skip, // K
            ],
        )]);
        let a = cs(&p);
        // Labels: 0=if, 1=async, 2=S, 3=else-skip, 4=K.
        assert!(
            a.may_happen_in_parallel(Label(2), Label(4)),
            "{:?}",
            a.mhp()
        );
        // The two branches never run in parallel with each other.
        assert!(!a.may_happen_in_parallel(Label(2), Label(3)));
    }

    #[test]
    fn switch_cases_join() {
        let p = prog(vec![(
            "main",
            vec![
                CAst::Switch(vec![
                    vec![CAst::Async(vec![CAst::Skip], false)], // 1,2
                    vec![CAst::Skip],                           // 3
                    vec![],
                ]),
                CAst::Skip, // 4
            ],
        )]);
        let a = cs(&p);
        assert!(a.may_happen_in_parallel(Label(2), Label(4)));
        assert!(!a.may_happen_in_parallel(Label(2), Label(3)));
    }

    #[test]
    fn finish_inside_if_discards_o() {
        let p = prog(vec![(
            "main",
            vec![
                CAst::If(
                    vec![CAst::Finish(vec![CAst::Async(vec![CAst::Skip], false)])],
                    vec![],
                ),
                CAst::Skip, // K
            ],
        )]);
        let a = cs(&p);
        // Labels: 0=if, 1=finish, 2=async, 3=S, 4=K.
        assert!(!a.may_happen_in_parallel(Label(3), Label(4)));
    }

    #[test]
    fn loop_async_self_overlaps() {
        let p = prog(vec![(
            "main",
            vec![CAst::Loop(vec![CAst::Async(vec![CAst::Skip], false)])],
        )]);
        let a = cs(&p);
        // Labels: 0=loop, 1=async, 2=S.
        assert!(a.may_happen_in_parallel(Label(2), Label(2)));
        let rep = async_pairs_condensed(&a);
        assert_eq!(rep.self_pairs, 1);
    }

    #[test]
    fn return_propagates_live_asyncs_to_caller() {
        // def f() { async {S} return; }  def main() { f(); K }
        // S may still run when f returns, so S ∥ K.
        let p = prog(vec![
            (
                "f",
                vec![CAst::Async(vec![CAst::Skip], false), CAst::Return],
            ),
            ("main", vec![CAst::Call("f".into()), CAst::Skip]),
        ]);
        let a = cs(&p);
        // Labels: 0=async, 1=S, 2=return, 3=call, 4=K.
        assert!(
            a.may_happen_in_parallel(Label(1), Label(4)),
            "{:?}",
            a.mhp()
        );
    }

    #[test]
    fn return_inside_finish_does_not_leak() {
        // def f() { finish { async {S} } return; }  main { f(); K }
        let p = prog(vec![
            (
                "f",
                vec![
                    CAst::Finish(vec![CAst::Async(vec![CAst::Skip], false)]),
                    CAst::Return,
                ],
            ),
            ("main", vec![CAst::Call("f".into()), CAst::Skip]),
        ]);
        let a = cs(&p);
        // Labels: 0=finish, 1=async, 2=S, 3=return, 4=call, 5=K.
        assert!(!a.may_happen_in_parallel(Label(2), Label(5)));
    }

    #[test]
    fn early_return_before_async_still_counts_continuation() {
        // Conservative: code after return is analyzed anyway.
        let p = prog(vec![
            (
                "f",
                vec![CAst::Return, CAst::Async(vec![CAst::Skip], false)],
            ),
            ("main", vec![CAst::Call("f".into()), CAst::Skip]),
        ]);
        let a = cs(&p);
        // Labels: 0=return, 1=async, 2=S, 3=call, 4=K.
        assert!(a.may_happen_in_parallel(Label(2), Label(4)));
    }

    #[test]
    fn stats_counts_are_structural() {
        let p = prog(vec![(
            "main",
            vec![
                CAst::Loop(vec![CAst::Async(vec![CAst::Skip], false)]),
                CAst::End,
            ],
        )]);
        let a = cs(&p);
        // Slabels: one per node + one per method.
        assert_eq!(a.stats.slabels_constraints, p.label_count() + 1);
        // Level-2: one m per node + one per method.
        assert_eq!(a.stats.level2_constraints, p.label_count() + 1);
        assert!(a.stats.level1_constraints > a.stats.level2_constraints);
    }

    #[test]
    fn naive_and_worklist_agree() {
        let p = prog(vec![
            (
                "f",
                vec![
                    CAst::If(
                        vec![CAst::Async(vec![CAst::Skip], true)],
                        vec![CAst::Return],
                    ),
                    CAst::Skip,
                ],
            ),
            (
                "main",
                vec![
                    CAst::Loop(vec![CAst::Call("f".into())]),
                    CAst::Finish(vec![CAst::Async(vec![CAst::Call("f".into())], false)]),
                    CAst::Skip,
                ],
            ),
        ]);
        let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
        let b = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Worklist);
        assert_eq!(a.m_methods, b.m_methods);
        assert_eq!(a.o_methods, b.o_methods);
    }
}
