//! # fx10-frontend
//!
//! The X10-Lite frontend: a condensed ten-node-kind intermediate form
//! (end/async/call/finish/if/loop/method/return/skip/switch) mirroring the
//! form the paper's implementation condenses full X10 into (§6, Figure 7),
//! plus a parser for an X10-like surface language ([`x10lite`]) and
//! constraint generation for the condensed form ([`gen`]).
//!
//! The pipeline is the same three phases as `fx10-core` and reuses its
//! solvers and set domains; [`gen::analyze_condensed`] is the condensed
//! analogue of `fx10_core::analyze`.

#![warn(missing_docs)]
pub mod condensed;
pub mod csemantics;
pub mod gen;
pub mod places;
pub mod x10lite;

pub use condensed::{
    AsyncStats, CAst, CBlock, CFuncId, CMethod, CNode, CNodeKind, CProgram, NodeCounts,
};
pub use csemantics::{explore_condensed, CondensedExploration};
pub use gen::{
    analyze_condensed, analyze_condensed_budgeted, async_pairs_condensed, CAsyncSite,
    CondensedAnalysis,
};
pub use places::{same_place_pairs, PlaceAssignment, PlaceId};
pub use x10lite::{parse, pretty, X10ParseError};
