//! The condensed intermediate form (paper §6, Figure 7).
//!
//! "Our implementation of type inference for X10 first translates an X10
//! program to a condensed form that closely resembles FX10 ... The
//! condensed form has ten kinds of nodes, namely end, async, call, finish,
//! if, loop, method, return, skip, and switch."
//!
//! - `skip` nodes "are all the various statements and expressions that
//!   don't affect the analysis" — opaque blocks of computation;
//! - `end` nodes "do not correspond to any program point in the code, but
//!   act as place holders for our constraint system";
//! - `switch` nodes "accommodate various control-flow statements";
//! - place-switching asyncs (`async at(p)`) are "handled ... in exactly
//!   the same way as the asyncs in FX10";
//! - `foreach`/`ateach` are "plain loops where the body is wrapped in an
//!   async".
//!
//! Every node carries a dense label assigned at [`CProgram::new`] time,
//! exactly like FX10 instructions, so the analysis crates' bitset domains
//! apply unchanged.

use fx10_syntax::Label;

/// A method id in a condensed program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CFuncId(pub u32);

impl CFuncId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The payload of one condensed node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CNodeKind {
    /// A constraint-system placeholder (no program point).
    End,
    /// An opaque block of analysis-irrelevant code.
    Skip,
    /// `async { body }`; `place_switch` marks the `async at(p)` form.
    Async {
        /// The spawned block.
        body: CBlock,
        /// True for the `async at(p)` form.
        place_switch: bool,
    },
    /// A call to another method.
    Call {
        /// The called method.
        callee: CFuncId,
    },
    /// `finish { body }`.
    Finish {
        /// The awaited block.
        body: CBlock,
    },
    /// Two-way branch; a missing `else` is an empty block.
    If {
        /// The then branch.
        then_: CBlock,
        /// The else branch (possibly empty).
        else_: CBlock,
    },
    /// Any loop (`while`, `for`, and the loop part of `foreach`/`ateach`).
    Loop {
        /// The loop body.
        body: CBlock,
    },
    /// Early method exit.
    Return,
    /// N-way branch.
    Switch {
        /// The case blocks.
        cases: Vec<CBlock>,
    },
}

/// One labeled condensed node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CNode {
    /// Dense program-unique label.
    pub label: Label,
    /// The node proper.
    pub kind: CNodeKind,
}

/// A (possibly empty) sequence of nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CBlock {
    /// The nodes, in order.
    pub nodes: Vec<CNode>,
}

/// One condensed method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CMethod {
    /// Source name.
    pub name: String,
    /// Body block.
    pub body: CBlock,
}

/// A condensed program with dense node labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CProgram {
    methods: Vec<CMethod>,
    label_count: usize,
    main: CFuncId,
    /// Source lines of code (set by the parser; generators estimate it
    /// from the pretty-printed form).
    pub loc: usize,
}

/// Unlabeled pre-AST used by the parser and generators; labels are
/// assigned by [`CProgram::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CAst {
    /// `end;`
    End,
    /// `compute;` / `skip;`
    Skip,
    /// `async { .. }` / `async at(p) { .. }`
    Async(Vec<CAst>, bool),
    /// `f();` (by name).
    Call(String),
    /// `finish { .. }`
    Finish(Vec<CAst>),
    /// `if (?) { .. } else { .. }`
    If(Vec<CAst>, Vec<CAst>),
    /// `while (?) { .. }` / `for (?) { .. }`
    Loop(Vec<CAst>),
    /// `return;`
    Return,
    /// `switch (?) { case {..} .. }`
    Switch(Vec<Vec<CAst>>),
}

/// Errors assembling a condensed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CError {
    /// A call names a missing method.
    UnknownMethod(String),
    /// Duplicate method name.
    DuplicateMethod(String),
    /// No methods.
    NoMethods,
}

impl std::fmt::Display for CError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CError::UnknownMethod(m) => write!(f, "call to unknown method `{m}`"),
            CError::DuplicateMethod(m) => write!(f, "duplicate method `{m}`"),
            CError::NoMethods => write!(f, "program has no methods"),
        }
    }
}

impl std::error::Error for CError {}

impl CProgram {
    /// Assembles and labels a condensed program. The main method is the
    /// one named `main`, else the first.
    pub fn new(methods: Vec<(String, Vec<CAst>)>, loc: usize) -> Result<CProgram, CError> {
        if methods.is_empty() {
            return Err(CError::NoMethods);
        }
        let mut names: Vec<String> = Vec::new();
        for (name, _) in &methods {
            if names.contains(name) {
                return Err(CError::DuplicateMethod(name.clone()));
            }
            names.push(name.clone());
        }
        let resolve = |n: &str| -> Result<CFuncId, CError> {
            names
                .iter()
                .position(|x| x == n)
                .map(|i| CFuncId(i as u32))
                .ok_or_else(|| CError::UnknownMethod(n.to_string()))
        };

        let mut next = 0u32;
        fn lower(
            nodes: Vec<CAst>,
            next: &mut u32,
            resolve: &dyn Fn(&str) -> Result<CFuncId, CError>,
        ) -> Result<CBlock, CError> {
            let mut out = Vec::with_capacity(nodes.len());
            for n in nodes {
                let label = Label(*next);
                *next += 1;
                let kind = match n {
                    CAst::End => CNodeKind::End,
                    CAst::Skip => CNodeKind::Skip,
                    CAst::Async(b, ps) => CNodeKind::Async {
                        body: lower(b, next, resolve)?,
                        place_switch: ps,
                    },
                    CAst::Call(name) => CNodeKind::Call {
                        callee: resolve(&name)?,
                    },
                    CAst::Finish(b) => CNodeKind::Finish {
                        body: lower(b, next, resolve)?,
                    },
                    CAst::If(t, e) => CNodeKind::If {
                        then_: lower(t, next, resolve)?,
                        else_: lower(e, next, resolve)?,
                    },
                    CAst::Loop(b) => CNodeKind::Loop {
                        body: lower(b, next, resolve)?,
                    },
                    CAst::Return => CNodeKind::Return,
                    CAst::Switch(cs) => CNodeKind::Switch {
                        cases: cs
                            .into_iter()
                            .map(|c| lower(c, next, resolve))
                            .collect::<Result<_, _>>()?,
                    },
                };
                out.push(CNode { label, kind });
            }
            Ok(CBlock { nodes: out })
        }

        let mut built = Vec::with_capacity(methods.len());
        for (name, body) in methods {
            let body = lower(body, &mut next, &resolve)?;
            built.push(CMethod { name, body });
        }
        let main = names
            .iter()
            .position(|n| n == "main")
            .map(|i| CFuncId(i as u32))
            .unwrap_or(CFuncId(0));
        Ok(CProgram {
            methods: built,
            label_count: next as usize,
            main,
            loc,
        })
    }

    /// Methods in declaration order.
    pub fn methods(&self) -> &[CMethod] {
        &self.methods
    }

    /// The method with id `f`.
    pub fn method(&self, f: CFuncId) -> &CMethod {
        &self.methods[f.index()]
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Looks up a method by name.
    pub fn find_method(&self, name: &str) -> Option<CFuncId> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| CFuncId(i as u32))
    }

    /// The entry method.
    pub fn main(&self) -> CFuncId {
        self.main
    }

    /// Total node labels.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Visits every node with its enclosing method.
    pub fn for_each_node(&self, mut f: impl FnMut(CFuncId, &CNode)) {
        fn walk(b: &CBlock, m: CFuncId, f: &mut impl FnMut(CFuncId, &CNode)) {
            for n in &b.nodes {
                f(m, n);
                match &n.kind {
                    CNodeKind::Async { body, .. }
                    | CNodeKind::Finish { body }
                    | CNodeKind::Loop { body } => walk(body, m, f),
                    CNodeKind::If { then_, else_ } => {
                        walk(then_, m, f);
                        walk(else_, m, f);
                    }
                    CNodeKind::Switch { cases } => {
                        for c in cases {
                            walk(c, m, f);
                        }
                    }
                    _ => {}
                }
            }
        }
        for (i, m) in self.methods.iter().enumerate() {
            walk(&m.body, CFuncId(i as u32), &mut f);
        }
    }

    /// Node-kind counts (the columns of Figure 7; `method` counts one per
    /// method, and `total` includes the method nodes).
    pub fn node_counts(&self) -> NodeCounts {
        let mut c = NodeCounts {
            method: self.method_count(),
            ..NodeCounts::default()
        };
        self.for_each_node(|_, n| match &n.kind {
            CNodeKind::End => c.end += 1,
            CNodeKind::Skip => c.skip += 1,
            CNodeKind::Async { .. } => c.async_ += 1,
            CNodeKind::Call { .. } => c.call += 1,
            CNodeKind::Finish { .. } => c.finish += 1,
            CNodeKind::If { .. } => c.if_ += 1,
            CNodeKind::Loop { .. } => c.loop_ += 1,
            CNodeKind::Return => c.return_ += 1,
            CNodeKind::Switch { .. } => c.switch += 1,
        });
        c
    }

    /// Async statistics (the Figure 6 columns): total asyncs, *loop*
    /// asyncs (in a loop with no finish wrapping them inside the loop),
    /// and *place-switching* asyncs.
    ///
    /// Following the paper, "for an ateach loop, we count the implicit
    /// async as a loop async even though it also serves the purpose of
    /// place switching" — i.e. the categories are exhaustive and disjoint,
    /// loop membership winning.
    pub fn async_stats(&self) -> AsyncStats {
        let mut st = AsyncStats::default();
        // in_loop: inside a loop body with no intervening finish.
        fn walk(b: &CBlock, in_loop: bool, st: &mut AsyncStats) {
            for n in &b.nodes {
                match &n.kind {
                    CNodeKind::Async { body, place_switch } => {
                        st.total += 1;
                        if in_loop {
                            st.loop_asyncs += 1;
                        } else if *place_switch {
                            st.place_switch += 1;
                        }
                        walk(body, in_loop, st);
                    }
                    CNodeKind::Finish { body } => walk(body, false, st),
                    CNodeKind::Loop { body } => walk(body, true, st),
                    CNodeKind::If { then_, else_ } => {
                        walk(then_, in_loop, st);
                        walk(else_, in_loop, st);
                    }
                    CNodeKind::Switch { cases } => {
                        for c in cases {
                            walk(c, in_loop, st);
                        }
                    }
                    _ => {}
                }
            }
        }
        for m in &self.methods {
            walk(&m.body, false, &mut st);
        }
        st
    }
}

/// Figure 6 async columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncStats {
    /// All async nodes.
    pub total: usize,
    /// Asyncs in loops not wrapped in a finish (may overlap themselves).
    pub loop_asyncs: usize,
    /// Place-switching asyncs outside loops.
    pub place_switch: usize,
}

/// Figure 7 node-kind counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounts {
    /// `End` nodes.
    pub end: usize,
    /// `Async` nodes.
    pub async_: usize,
    /// `Call` nodes.
    pub call: usize,
    /// `Finish` nodes.
    pub finish: usize,
    /// `If` nodes.
    pub if_: usize,
    /// `Loop` nodes.
    pub loop_: usize,
    /// One per method.
    pub method: usize,
    /// `Return` nodes.
    pub return_: usize,
    /// `Skip` nodes.
    pub skip: usize,
    /// `Switch` nodes.
    pub switch: usize,
}

impl NodeCounts {
    /// Total nodes including method nodes.
    pub fn total(&self) -> usize {
        self.end
            + self.async_
            + self.call
            + self.finish
            + self.if_
            + self.loop_
            + self.method
            + self.return_
            + self.skip
            + self.switch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CProgram {
        CProgram::new(
            vec![
                (
                    "f".into(),
                    vec![
                        CAst::Async(vec![CAst::Skip], false),
                        CAst::Return,
                        CAst::End,
                    ],
                ),
                (
                    "main".into(),
                    vec![
                        CAst::Finish(vec![CAst::Call("f".into())]),
                        CAst::Loop(vec![CAst::Async(vec![CAst::Skip], true)]),
                        CAst::If(vec![CAst::Skip], vec![]),
                        CAst::Switch(vec![vec![CAst::Skip], vec![CAst::Return]]),
                        CAst::End,
                    ],
                ),
            ],
            42,
        )
        .unwrap()
    }

    #[test]
    fn labels_are_dense() {
        let p = sample();
        let mut labels = Vec::new();
        p.for_each_node(|_, n| labels.push(n.label.0));
        labels.sort();
        assert_eq!(labels, (0..p.label_count() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn node_counts_match_figure7_columns() {
        let p = sample();
        let c = p.node_counts();
        assert_eq!(c.method, 2);
        assert_eq!(c.async_, 2);
        assert_eq!(c.finish, 1);
        assert_eq!(c.loop_, 1);
        assert_eq!(c.if_, 1);
        assert_eq!(c.switch, 1);
        assert_eq!(c.return_, 2);
        assert_eq!(c.end, 2);
        assert_eq!(c.skip, 4);
        assert_eq!(c.call, 1);
        assert_eq!(c.total(), p.label_count() + c.method);
    }

    #[test]
    fn async_stats_classify_loop_and_place_switch() {
        let p = sample();
        let st = p.async_stats();
        assert_eq!(st.total, 2);
        // The `async at` inside the loop counts as a loop async (paper's
        // ateach convention), not as a place switch.
        assert_eq!(st.loop_asyncs, 1);
        assert_eq!(st.place_switch, 0);
    }

    #[test]
    fn finish_inside_loop_blocks_loop_async_category() {
        let p = CProgram::new(
            vec![(
                "main".into(),
                vec![CAst::Loop(vec![CAst::Finish(vec![CAst::Async(
                    vec![CAst::Skip],
                    false,
                )])])],
            )],
            1,
        )
        .unwrap();
        let st = p.async_stats();
        assert_eq!(st.total, 1);
        assert_eq!(st.loop_asyncs, 0, "finish-wrapped: cannot self-overlap");
    }

    #[test]
    fn unknown_callee_rejected() {
        let err =
            CProgram::new(vec![("main".into(), vec![CAst::Call("g".into())])], 1).unwrap_err();
        assert_eq!(err, CError::UnknownMethod("g".into()));
    }
}
