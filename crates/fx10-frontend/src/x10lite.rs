//! X10-Lite: an X10-shaped surface language that lowers to the condensed
//! form.
//!
//! The analysis only cares about the ten condensed node kinds, so X10-Lite
//! keeps X10's control skeleton and abstracts everything else:
//!
//! ```text
//! program ::= def*
//! def     ::= "def" ident "(" ")" block
//! block   ::= "{" stmt* "}"
//! stmt    ::= "skip" ";" | "compute" ";" | ident ";"      → Skip
//!           | "end" ";"                                    → End
//!           | "return" ";"                                 → Return
//!           | "async" ["at" "(" … ")"] block               → Async
//!           | "finish" block                               → Finish
//!           | "if" "(" … ")" block ["else" block]          → If
//!           | "while" "(" … ")" block                      → Loop
//!           | "for"   "(" … ")" block                      → Loop
//!           | "foreach" "(" … ")" block                    → Loop{Async}
//!           | "ateach"  "(" … ")" block                    → Loop{Async at}
//!           | "switch" "(" … ")" "{" ("case" block)* "}"   → Switch
//!           | ident "(" ")" ";"                            → Call
//! ```
//!
//! Parenthesized conditions are opaque: anything up to the matching `)`
//! is skipped (the analysis is control-flow-insensitive to guards).
//! `foreach`/`ateach` desugar per the paper: "plain loops where the body
//! is wrapped in an async" (§6), the `ateach` async being place-switching
//! but counted as a loop async.
//!
//! LOC is the number of non-blank source lines, matching the paper's
//! Figure 6 metric.

use crate::condensed::{CAst, CError, CProgram};

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct X10ParseError {
    /// 1-based source line (0 = program-level).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for X10ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for X10ParseError {}

impl From<CError> for X10ParseError {
    fn from(e: CError) -> Self {
        X10ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    Semi,
    /// A fully-skipped parenthesized guard.
    Guard,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, X10ParseError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(X10ParseError {
                        line,
                        message: "unexpected `/`".into(),
                    });
                }
            }
            '(' => {
                // Skip to the matching close paren; guards are opaque.
                chars.next();
                let mut depth = 1usize;
                for c in chars.by_ref() {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        '\n' => line += 1,
                        _ => {}
                    }
                }
                if depth != 0 {
                    return Err(X10ParseError {
                        line,
                        message: "unterminated `(`".into(),
                    });
                }
                out.push((Tok::Guard, line));
            }
            '{' => {
                chars.next();
                out.push((Tok::LBrace, line));
            }
            '}' => {
                chars.next();
                out.push((Tok::RBrace, line));
            }
            ';' => {
                chars.next();
                out.push((Tok::Semi, line));
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), line));
            }
            other => {
                return Err(X10ParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|&(_, l)| l)
            .unwrap_or(1)
    }

    fn err(&self, m: impl Into<String>) -> X10ParseError {
        X10ParseError {
            line: self.line(),
            message: m.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), X10ParseError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            Some(_) => Err(X10ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected {what}"),
            }),
            None => Err(self.err(format!("expected {what}"))),
        }
    }

    fn eat_guard(&mut self) -> Result<(), X10ParseError> {
        self.expect(Tok::Guard, "`( … )` guard")
    }

    fn program(&mut self) -> Result<Vec<(String, Vec<CAst>)>, X10ParseError> {
        let mut methods = Vec::new();
        while self.peek().is_some() {
            match self.next() {
                Some(Tok::Ident(kw)) if kw == "def" => {}
                _ => return Err(self.err("expected `def`")),
            }
            let name = match self.next() {
                Some(Tok::Ident(n)) => n,
                _ => return Err(self.err("expected method name")),
            };
            self.eat_guard()?; // the `()` parameter list
            let body = self.block()?;
            methods.push((name, body));
        }
        Ok(methods)
    }

    fn block(&mut self) -> Result<Vec<CAst>, X10ParseError> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.next();
                    return Ok(out);
                }
                Some(_) => out.push(self.stmt()?),
                None => return Err(self.err("unterminated block")),
            }
        }
    }

    fn stmt(&mut self) -> Result<CAst, X10ParseError> {
        let kw = match self.next() {
            Some(Tok::Ident(k)) => k,
            _ => return Err(self.err("expected a statement")),
        };
        match kw.as_str() {
            "skip" | "compute" => {
                self.expect(Tok::Semi, "`;`")?;
                Ok(CAst::Skip)
            }
            "end" => {
                self.expect(Tok::Semi, "`;`")?;
                Ok(CAst::End)
            }
            "return" => {
                self.expect(Tok::Semi, "`;`")?;
                Ok(CAst::Return)
            }
            "async" => {
                // Optional `at ( … )`.
                let mut place_switch = false;
                if self.peek() == Some(&Tok::Ident("at".into())) {
                    self.next();
                    self.eat_guard()?;
                    place_switch = true;
                }
                Ok(CAst::Async(self.block()?, place_switch))
            }
            "finish" => Ok(CAst::Finish(self.block()?)),
            "if" => {
                self.eat_guard()?;
                let then_ = self.block()?;
                let else_ = if self.peek() == Some(&Tok::Ident("else".into())) {
                    self.next();
                    self.block()?
                } else {
                    vec![]
                };
                Ok(CAst::If(then_, else_))
            }
            "while" | "for" => {
                self.eat_guard()?;
                Ok(CAst::Loop(self.block()?))
            }
            "foreach" => {
                self.eat_guard()?;
                Ok(CAst::Loop(vec![CAst::Async(self.block()?, false)]))
            }
            "ateach" => {
                self.eat_guard()?;
                Ok(CAst::Loop(vec![CAst::Async(self.block()?, true)]))
            }
            "switch" => {
                self.eat_guard()?;
                self.expect(Tok::LBrace, "`{`")?;
                let mut cases = Vec::new();
                loop {
                    match self.next() {
                        Some(Tok::RBrace) => break,
                        Some(Tok::Ident(c)) if c == "case" => cases.push(self.block()?),
                        _ => return Err(self.err("expected `case` or `}` in switch")),
                    }
                }
                Ok(CAst::Switch(cases))
            }
            name => {
                // `name();` — the guard token is the argument list.
                self.eat_guard()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(CAst::Call(name.to_string()))
            }
        }
    }
}

/// Parses X10-Lite source into a labeled condensed program.
pub fn parse(src: &str) -> Result<CProgram, X10ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let methods = p.program()?;
    let loc = src.lines().filter(|l| !l.trim().is_empty()).count();
    Ok(CProgram::new(methods, loc)?)
}

/// Pretty-prints a condensed program back to parseable X10-Lite (used by
/// the benchmark generator to materialize source and count LOC).
pub fn pretty(p: &CProgram) -> String {
    use crate::condensed::{CBlock, CNodeKind};
    use std::fmt::Write;
    fn block(p: &CProgram, b: &CBlock, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        for n in &b.nodes {
            match &n.kind {
                CNodeKind::End => {
                    let _ = writeln!(out, "{pad}end;");
                }
                CNodeKind::Skip => {
                    let _ = writeln!(out, "{pad}compute;");
                }
                CNodeKind::Return => {
                    let _ = writeln!(out, "{pad}return;");
                }
                CNodeKind::Call { callee } => {
                    let _ = writeln!(out, "{pad}{}();", p.method(*callee).name);
                }
                CNodeKind::Async { body, place_switch } => {
                    if *place_switch {
                        let _ = writeln!(out, "{pad}async at (p) {{");
                    } else {
                        let _ = writeln!(out, "{pad}async {{");
                    }
                    block(p, body, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
                CNodeKind::Finish { body } => {
                    let _ = writeln!(out, "{pad}finish {{");
                    block(p, body, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
                CNodeKind::Loop { body } => {
                    let _ = writeln!(out, "{pad}while (c) {{");
                    block(p, body, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
                CNodeKind::If { then_, else_ } => {
                    let _ = writeln!(out, "{pad}if (c) {{");
                    block(p, then_, depth + 1, out);
                    if else_.nodes.is_empty() {
                        let _ = writeln!(out, "{pad}}}");
                    } else {
                        let _ = writeln!(out, "{pad}}} else {{");
                        block(p, else_, depth + 1, out);
                        let _ = writeln!(out, "{pad}}}");
                    }
                }
                CNodeKind::Switch { cases } => {
                    let _ = writeln!(out, "{pad}switch (c) {{");
                    for c in cases {
                        let _ = writeln!(out, "{pad}  case {{");
                        block(p, c, depth + 2, out);
                        let _ = writeln!(out, "{pad}  }}");
                    }
                    let _ = writeln!(out, "{pad}}}");
                }
            }
        }
    }
    let mut out = String::new();
    for m in p.methods() {
        let _ = writeln!(out, "def {}() {{", m.name);
        block(p, &m.body, 1, &mut out);
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condensed::CNodeKind;

    const SRC: &str = "\
def work() {
  for (int i = 0; i < n; i++) {
    compute;
  }
  return;
}
def main() {
  finish {
    foreach (point p : region) {
      work();
    }
  }
  ateach (point q : dist) {
    compute;
  }
  if (x > 0) {
    async at (here.next()) { compute; }
  } else {
    switch (mode) {
      case { compute; }
      case { return; }
    }
  }
  end;
}
";

    #[test]
    fn parses_and_counts_nodes() {
        let p = parse(SRC).unwrap();
        let c = p.node_counts();
        assert_eq!(c.method, 2);
        // foreach + ateach → 2 loops + for-loop = 3 loops; each of the
        // first two wraps an implicit async; plus the `async at`.
        assert_eq!(c.loop_, 3);
        assert_eq!(c.async_, 3);
        assert_eq!(c.finish, 1);
        assert_eq!(c.if_, 1);
        assert_eq!(c.switch, 1);
        assert_eq!(c.return_, 2);
        assert_eq!(c.end, 1);
        assert_eq!(c.call, 1);
        assert_eq!(c.skip, 4);
        assert_eq!(p.loc, 25);
    }

    #[test]
    fn async_categories_follow_paper_conventions() {
        let p = parse(SRC).unwrap();
        let st = p.async_stats();
        assert_eq!(st.total, 3);
        // foreach's and ateach's asyncs are loop asyncs (even the
        // place-switching ateach one); `async at` outside a loop is a
        // place switch.
        assert_eq!(st.loop_asyncs, 2);
        assert_eq!(st.place_switch, 1);
    }

    #[test]
    fn pretty_round_trips() {
        let p1 = parse(SRC).unwrap();
        let printed = pretty(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1.node_counts(), p2.node_counts());
        assert_eq!(p1.async_stats(), p2.async_stats());
        // Structure is identical (labels and loc may differ).
        assert_eq!(p1.method_count(), p2.method_count());
    }

    #[test]
    fn ateach_lowering_shape() {
        let p = parse("def main() { ateach (x) { compute; } }").unwrap();
        match &p.methods()[0].body.nodes[0].kind {
            CNodeKind::Loop { body } => match &body.nodes[0].kind {
                CNodeKind::Async { place_switch, .. } => assert!(*place_switch),
                k => panic!("expected async, got {k:?}"),
            },
            k => panic!("expected loop, got {k:?}"),
        }
    }

    #[test]
    fn nested_parens_in_guards() {
        let p = parse("def main() { if ((a && (b || c)) != 0) { compute; } }").unwrap();
        assert_eq!(p.node_counts().if_, 1);
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse("def main() {\n  async ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("def main() { g(); }").is_err());
    }
}
