//! Places — the paper's §8 extension sketch, implemented.
//!
//! "Another idea is to support computation with multiple places … One
//! could then consider refining our analysis by asking whether two
//! statements may happen in parallel on the *same* place."
//!
//! X10 activities run at places; only `async at(p)` moves computation.
//! We assign every node an *abstract place*: the program starts at place
//! 0, a place-switching async's body runs at a fresh abstract place, and
//! everything else (including plain asyncs) inherits its context's place.
//! Distinct abstract places *may* denote distinct dynamic places, so two
//! statements with different abstract places may-happen-in-parallel
//! *on the same place* only if … never: an abstract place is created by
//! exactly one `async at` node, so labels with different abstract places
//! are guaranteed to run at different dynamic places **under the
//! free-placement interpretation** (each `at(p)` targets a fresh place).
//! This is the refinement's optimistic mode, useful for bounding how much
//! same-place analysis could help (e.g. for lock-based race detectors
//! that only protect intra-place accesses).
//!
//! [`same_place_pairs`] filters an MHP relation down to the pairs whose
//! abstract places coincide — the statements that can really contend.

use crate::condensed::{CBlock, CNodeKind, CProgram};
use crate::gen::CondensedAnalysis;
use fx10_core::sets::PairSet;
use fx10_syntax::Label;

/// An abstract place id. Place 0 is where `main` starts; each
/// place-switching async introduces a fresh id for its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlaceId(pub u32);

/// The abstract place of every label.
#[derive(Debug, Clone)]
pub struct PlaceAssignment {
    places: Vec<PlaceId>,
    count: u32,
}

impl PlaceAssignment {
    /// Computes the assignment for a condensed program.
    ///
    /// Method bodies are assigned the place of… every call site, which in
    /// general differs per call; we conservatively mark methods called
    /// from more than one distinct place context as *migratory*: their
    /// labels get the special ambiguous place (`PlaceId(u32::MAX)`) that
    /// collides with every place (so the refinement never loses
    /// soundness).
    pub fn compute(p: &CProgram) -> PlaceAssignment {
        let n = p.label_count();
        // Sentinels: UNSET = not yet reached, u32::MAX = ambiguous
        // (multiple place contexts).
        const UNSET: u32 = u32::MAX - 1;
        let mut places = vec![UNSET; n];
        let mut method_place = vec![UNSET; p.method_count()];

        // Iterate to a fixed point over the call graph: main's body at
        // place 0; call sites propagate their place into callees.
        method_place[p.main().index()] = 0;
        loop {
            let mut changed = false;

            fn walk(
                b: &CBlock,
                here: u32,
                places: &mut [u32],
                method_place: &mut [u32],
                changed: &mut bool,
            ) {
                for node in &b.nodes {
                    let slot = &mut places[node.label.index()];
                    if *slot != here && *slot != u32::MAX {
                        if *slot == u32::MAX - 1 {
                            *slot = here;
                        } else {
                            *slot = u32::MAX; // two contexts: ambiguous
                        }
                        *changed = true;
                    }
                    match &node.kind {
                        CNodeKind::Async { body, place_switch } => {
                            let target = if *place_switch {
                                // A fresh abstract place per `at` node,
                                // stable across fixpoint rounds: derived
                                // from the node label.
                                node.label.0 + 1_000_000
                            } else {
                                here
                            };
                            walk(body, target, places, method_place, changed);
                        }
                        CNodeKind::Finish { body } | CNodeKind::Loop { body } => {
                            walk(body, here, places, method_place, changed)
                        }
                        CNodeKind::If { then_, else_ } => {
                            walk(then_, here, places, method_place, changed);
                            walk(else_, here, places, method_place, changed);
                        }
                        CNodeKind::Switch { cases } => {
                            for c in cases {
                                walk(c, here, places, method_place, changed);
                            }
                        }
                        CNodeKind::Call { callee } => {
                            let mp = &mut method_place[callee.index()];
                            if *mp != here && *mp != u32::MAX {
                                if *mp == u32::MAX - 1 {
                                    *mp = here;
                                } else {
                                    *mp = u32::MAX;
                                }
                                *changed = true;
                            }
                        }
                        _ => {}
                    }
                }
            }

            for (mi, m) in p.methods().iter().enumerate() {
                let here = method_place[mi];
                if here == UNSET {
                    continue; // unreachable method
                }
                walk(&m.body, here, &mut places, &mut method_place, &mut changed);
            }
            if !changed {
                break;
            }
        }

        // Unreached labels (dead methods) default to place 0.
        let places: Vec<PlaceId> = places
            .into_iter()
            .map(|q| PlaceId(if q == UNSET { 0 } else { q }))
            .collect();
        let count = {
            let mut distinct: Vec<u32> = places
                .iter()
                .map(|p| p.0)
                .filter(|&q| q != u32::MAX)
                .collect();
            distinct.sort_unstable();
            distinct.dedup();
            distinct.len() as u32
        };
        PlaceAssignment { places, count }
    }

    /// The abstract place of a label.
    pub fn place(&self, l: Label) -> PlaceId {
        self.places[l.index()]
    }

    /// True when the two labels may run at the same dynamic place: equal
    /// abstract places, or either is ambiguous.
    pub fn may_share_place(&self, a: Label, b: Label) -> bool {
        let (pa, pb) = (self.place(a), self.place(b));
        pa == pb || pa.0 == u32::MAX || pb.0 == u32::MAX
    }

    /// Number of non-ambiguous abstract places introduced (diagnostics).
    pub fn place_count(&self) -> u32 {
        self.count
    }
}

/// The §8 refinement: the subset of an analysis's MHP pairs whose
/// statements may contend at a single place.
pub fn same_place_pairs(ca: &CondensedAnalysis, places: &PlaceAssignment) -> PairSet {
    let m = ca.mhp();
    let mut out = PairSet::empty(m.universe());
    for (a, b) in m.iter_pairs() {
        if places.may_share_place(a, b) {
            out.insert(a, b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::analyze_condensed;
    use crate::x10lite::parse;
    use fx10_core::analysis::SolverKind;
    use fx10_core::Mode;

    #[test]
    fn place_switch_separates_parallel_statements() {
        // Body (label 1) runs at a fresh place; the continuation (label
        // 2) stays at place 0. They MHP, but never at the same place.
        let p = parse("def main() { async at (p) { compute; } compute; }").unwrap();
        let places = PlaceAssignment::compute(&p);
        let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
        assert!(a.may_happen_in_parallel(Label(1), Label(2)));
        assert!(!places.may_share_place(Label(1), Label(2)));
        let refined = same_place_pairs(&a, &places);
        assert!(!refined.contains(Label(1), Label(2)));
        assert!(refined.len() < a.mhp().len());
    }

    #[test]
    fn plain_async_shares_the_place() {
        let p = parse("def main() { async { compute; } compute; }").unwrap();
        let places = PlaceAssignment::compute(&p);
        let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Naive);
        assert!(places.may_share_place(Label(1), Label(2)));
        let refined = same_place_pairs(&a, &places);
        assert_eq!(&refined, a.mhp(), "no place switches → no refinement");
    }

    #[test]
    fn multi_context_methods_are_ambiguous() {
        // f is called from place 0 and from inside an `async at` — its
        // labels must collide with everything (soundness).
        let p = parse(
            "def f() { compute; }\n\
             def main() { f(); async at (q) { f(); } compute; }",
        )
        .unwrap();
        let places = PlaceAssignment::compute(&p);
        let f_label = {
            let f = p.find_method("f").unwrap();
            p.method(f).body.nodes[0].label
        };
        assert_eq!(places.place(f_label).0, u32::MAX, "migratory method");
        // Ambiguous collides with both contexts.
        assert!(places.may_share_place(f_label, Label(1)));
    }

    #[test]
    fn ateach_bodies_get_distinct_places() {
        let p = parse("def main() { ateach (q) { compute; } async at (r) { compute; } }").unwrap();
        let places = PlaceAssignment::compute(&p);
        // Labels: 0=loop, 1=async(at), 2=compute, 3=async at, 4=compute.
        let b1 = places.place(Label(2));
        let b2 = places.place(Label(4));
        assert_ne!(b1, b2);
        assert_ne!(b1, places.place(Label(0)));
    }
}
