//! An executable semantics for the condensed form.
//!
//! The paper's condensed constraints for `if`/`switch`/`loop`/`return`
//! are described only as "similar to those for FX10" (§5.3); DESIGN.md §6
//! pins them down, and this module provides the ground truth to validate
//! that pinning: a small-step semantics with
//!
//! - nondeterministic branch choice for `if`/`switch` (guards are
//!   opaque),
//! - loops iterating a nondeterministic `0..=K` times (any bound yields
//!   an *under*-approximation of the analysis' ≥2-iterations assumption,
//!   so `dynamic ⊆ static` must hold for every `K`; `K = 2` exercises
//!   the self-overlap the analysis models),
//! - `return` unwinding to the nearest method boundary (calls push
//!   frames; asyncs capture the frame stack),
//! - `async`/`finish` building the same `∥`/`▷` trees as FX10.
//!
//! [`explore_condensed`] enumerates reachable configurations and unions
//! the co-enabled front labels — the condensed dynamic MHP — which the
//! property tests compare against
//! [`analyze_condensed`](crate::gen::analyze_condensed).

use crate::condensed::{CBlock, CNode, CNodeKind, CProgram};
use fx10_syntax::Label;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::rc::Rc;

/// Loop-iteration bound for exploration.
pub const DEFAULT_LOOP_BOUND: u8 = 2;

/// One frame of an activity: a node list, a cursor, and what popping it
/// means.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Frame {
    nodes: Rc<Vec<CNode>>,
    pos: usize,
    kind: FrameKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum FrameKind {
    /// A method body: `return` stops here.
    Method,
    /// A branch or finish/async body block.
    Block,
    /// A loop body; `iterations_left` more re-entries are allowed.
    Loop { iterations_left: u8 },
}

/// An activity: a stack of frames (innermost last).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Task {
    frames: Vec<Frame>,
}

impl Task {
    fn of_block(nodes: &CBlock, kind: FrameKind) -> Task {
        Task {
            frames: vec![Frame {
                nodes: Rc::new(nodes.nodes.clone()),
                pos: 0,
                kind,
            }],
        }
    }

    /// Drops exhausted frames; empty = the activity finished.
    fn settle(mut self) -> Option<Task> {
        loop {
            match self.frames.last() {
                None => return None,
                Some(f) if f.pos < f.nodes.len() => return Some(self),
                Some(f) => {
                    // Loop frames may restart instead of popping; that
                    // choice is made in `successors` — settle only pops
                    // frames with no iterations left.
                    if let FrameKind::Loop { iterations_left } = f.kind {
                        if iterations_left > 0 {
                            return Some(self);
                        }
                    }
                    self.frames.pop();
                }
            }
        }
    }

    /// The node about to execute, if the task is not at a loop-restart
    /// decision point.
    fn current(&self) -> Option<&CNode> {
        let f = self.frames.last()?;
        f.nodes.get(f.pos)
    }

    /// The label an observer sees as "executing next".
    fn front_label(&self) -> Option<Label> {
        self.current().map(|n| n.label)
    }
}

/// The execution tree (same shape as FX10's).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum CTree {
    Done,
    Leaf(Task),
    Seq(Box<CTree>, Box<CTree>),
    Par(Box<CTree>, Box<CTree>),
}

impl CTree {
    fn leaf(t: Task) -> CTree {
        match t.settle() {
            Some(t) => CTree::Leaf(t),
            None => CTree::Done,
        }
    }

    fn is_done(&self) -> bool {
        matches!(self, CTree::Done)
    }

    fn fronts(&self, out: &mut Vec<Label>) {
        match self {
            CTree::Done => {}
            CTree::Leaf(t) => {
                if let Some(l) = t.front_label() {
                    out.push(l);
                }
            }
            CTree::Seq(a, _) => a.fronts(out),
            CTree::Par(a, b) => {
                a.fronts(out);
                b.fronts(out);
            }
        }
    }
}

fn task_successors(p: &CProgram, t: &Task, loop_bound: u8) -> Vec<CTree> {
    let mut out = Vec::new();
    let frame = t.frames.last().expect("settled tasks have frames");

    // Loop-restart decision point: the body is exhausted but iterations
    // remain — either exit (drop the budget) or run the body again.
    if frame.pos >= frame.nodes.len() {
        if let FrameKind::Loop { iterations_left } = frame.kind {
            debug_assert!(iterations_left > 0);
            // Exit.
            let mut exit = t.clone();
            exit.frames.last_mut().unwrap().kind = FrameKind::Loop { iterations_left: 0 };
            out.push(CTree::leaf(exit));
            // Re-enter.
            let mut again = t.clone();
            {
                let f = again.frames.last_mut().unwrap();
                f.pos = 0;
                f.kind = FrameKind::Loop {
                    iterations_left: iterations_left - 1,
                };
            }
            out.push(CTree::leaf(again));
            return out;
        }
        unreachable!("settle() pops exhausted non-loop frames");
    }

    let node = frame.nodes[frame.pos].clone();
    // The task with the cursor advanced past the current node.
    let advanced = || {
        let mut n = t.clone();
        n.frames.last_mut().unwrap().pos += 1;
        n
    };

    match &node.kind {
        CNodeKind::End | CNodeKind::Skip => out.push(CTree::leaf(advanced())),
        CNodeKind::Return => {
            // Unwind to (and including) the nearest method frame; if none
            // (main's top block is a Method frame, so this only happens
            // for code spawned past it), finish the activity.
            let mut n = advanced();
            while let Some(f) = n.frames.pop() {
                if matches!(f.kind, FrameKind::Method) {
                    break;
                }
            }
            out.push(CTree::leaf(n));
        }
        CNodeKind::Call { callee } => {
            let mut n = advanced();
            n.frames.push(Frame {
                nodes: Rc::new(p.method(*callee).body.nodes.clone()),
                pos: 0,
                kind: FrameKind::Method,
            });
            out.push(CTree::leaf(n));
        }
        CNodeKind::Async { body, .. } => {
            let spawned = Task::of_block(body, FrameKind::Block);
            out.push(CTree::Par(
                Box::new(CTree::leaf(spawned)),
                Box::new(CTree::leaf(advanced())),
            ));
        }
        CNodeKind::Finish { body } => {
            let inner = Task::of_block(body, FrameKind::Block);
            out.push(CTree::Seq(
                Box::new(CTree::leaf(inner)),
                Box::new(CTree::leaf(advanced())),
            ));
        }
        CNodeKind::If { then_, else_ } => {
            for branch in [then_, else_] {
                let mut n = advanced();
                if !branch.nodes.is_empty() {
                    n.frames.push(Frame {
                        nodes: Rc::new(branch.nodes.clone()),
                        pos: 0,
                        kind: FrameKind::Block,
                    });
                }
                out.push(CTree::leaf(n));
            }
        }
        CNodeKind::Switch { cases } => {
            if cases.is_empty() {
                out.push(CTree::leaf(advanced()));
            }
            for case in cases {
                let mut n = advanced();
                if !case.nodes.is_empty() {
                    n.frames.push(Frame {
                        nodes: Rc::new(case.nodes.clone()),
                        pos: 0,
                        kind: FrameKind::Block,
                    });
                }
                out.push(CTree::leaf(n));
            }
        }
        CNodeKind::Loop { body } => {
            // Skip entirely…
            out.push(CTree::leaf(advanced()));
            // …or enter with the iteration budget.
            if !body.nodes.is_empty() && loop_bound > 0 {
                let mut n = advanced();
                n.frames.push(Frame {
                    nodes: Rc::new(body.nodes.clone()),
                    pos: 0,
                    kind: FrameKind::Loop {
                        iterations_left: loop_bound - 1,
                    },
                });
                out.push(CTree::leaf(n));
            }
        }
    }
    out
}

fn tree_successors(p: &CProgram, t: &CTree, loop_bound: u8) -> Vec<CTree> {
    match t {
        CTree::Done => vec![],
        CTree::Leaf(task) => task_successors(p, task, loop_bound),
        CTree::Seq(a, b) => {
            if a.is_done() {
                vec![(**b).clone()]
            } else {
                tree_successors(p, a, loop_bound)
                    .into_iter()
                    .map(|a2| CTree::Seq(Box::new(a2), b.clone()))
                    .collect()
            }
        }
        CTree::Par(a, b) => {
            let mut out = Vec::new();
            if a.is_done() {
                out.push((**b).clone());
            }
            if b.is_done() {
                out.push((**a).clone());
            }
            for a2 in tree_successors(p, a, loop_bound) {
                out.push(CTree::Par(Box::new(a2), b.clone()));
            }
            for b2 in tree_successors(p, b, loop_bound) {
                out.push(CTree::Par(a.clone(), Box::new(b2)));
            }
            out
        }
    }
}

/// Result of exploring a condensed program.
#[derive(Debug, Clone)]
pub struct CondensedExploration {
    /// Distinct configurations visited.
    pub visited: usize,
    /// True when the cap cut the search.
    pub truncated: bool,
    /// Dynamic MHP under the bounded-loop semantics.
    pub mhp: BTreeSet<(Label, Label)>,
    /// Every reachable configuration could step.
    pub deadlock_free: bool,
}

/// Exhaustive exploration of a condensed program's bounded-loop
/// semantics, computing the dynamic MHP ground truth.
pub fn explore_condensed(p: &CProgram, max_states: usize, loop_bound: u8) -> CondensedExploration {
    let init = CTree::leaf(Task::of_block(&p.method(p.main()).body, FrameKind::Method));
    let mut visited: HashSet<CTree> = HashSet::new();
    let mut queue: VecDeque<CTree> = VecDeque::new();
    visited.insert(init.clone());
    queue.push_back(init);

    let mut mhp = BTreeSet::new();
    let mut truncated = false;
    let mut deadlock_free = true;

    while let Some(t) = queue.pop_front() {
        let mut fronts = Vec::new();
        t.fronts(&mut fronts);
        // Only labels of leaves that can actually step count; every
        // non-done leaf can (the semantics is total), so all fronts do.
        for (i, &x) in fronts.iter().enumerate() {
            for &y in &fronts[i + 1..] {
                mhp.insert((x.min(y), x.max(y)));
            }
        }
        let mut sorted = fronts;
        sorted.sort();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                mhp.insert((w[0], w[0]));
            }
        }

        if t.is_done() {
            continue;
        }
        let succ = tree_successors(p, &t, loop_bound);
        if succ.is_empty() {
            deadlock_free = false;
            continue;
        }
        for s in succ {
            if visited.len() >= max_states {
                truncated = true;
                break;
            }
            if visited.insert(s.clone()) {
                queue.push_back(s);
            }
        }
        if truncated {
            break;
        }
    }

    CondensedExploration {
        visited: visited.len(),
        truncated,
        mhp,
        deadlock_free,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condensed::CAst;
    use crate::gen::analyze_condensed;
    use fx10_core::analysis::SolverKind;
    use fx10_core::Mode;

    fn prog(methods: Vec<(&str, Vec<CAst>)>) -> CProgram {
        CProgram::new(
            methods
                .into_iter()
                .map(|(n, b)| (n.to_string(), b))
                .collect(),
            1,
        )
        .unwrap()
    }

    fn check_sound(p: &CProgram) -> CondensedExploration {
        let e = explore_condensed(p, 100_000, DEFAULT_LOOP_BOUND);
        assert!(e.deadlock_free);
        let a = analyze_condensed(p, Mode::ContextSensitive, SolverKind::Worklist);
        for &(x, y) in &e.mhp {
            assert!(
                a.may_happen_in_parallel(x, y),
                "dynamic pair ({x:?},{y:?}) missing statically"
            );
        }
        e
    }

    #[test]
    fn if_branches_do_not_overlap_dynamically() {
        let p = prog(vec![(
            "main",
            vec![
                CAst::If(vec![CAst::Async(vec![CAst::Skip], false)], vec![CAst::Skip]),
                CAst::Skip,
            ],
        )]);
        let e = check_sound(&p);
        // Labels: 0=if, 1=async, 2=S, 3=else, 4=K.
        let pair = |a: u32, b: u32| (Label(a.min(b)), Label(a.max(b)));
        assert!(e.mhp.contains(&pair(2, 4)), "S ∥ K across the if join");
        assert!(!e.mhp.contains(&pair(2, 3)), "branches are exclusive");
    }

    #[test]
    fn loop_async_self_overlap_is_dynamically_real() {
        let p = prog(vec![(
            "main",
            vec![CAst::Loop(vec![CAst::Async(vec![CAst::Skip], false)])],
        )]);
        let e = check_sound(&p);
        // Label 2 = the async body: two iterations overlap.
        assert!(e.mhp.contains(&(Label(2), Label(2))));
    }

    #[test]
    fn return_leaks_pending_asyncs_to_the_caller() {
        // def f() { async {S} return; }  main { f(); K }
        let p = prog(vec![
            (
                "f",
                vec![CAst::Async(vec![CAst::Skip], false), CAst::Return],
            ),
            ("main", vec![CAst::Call("f".into()), CAst::Skip]),
        ]);
        let e = check_sound(&p);
        // Labels: 0=async, 1=S, 2=return, 3=call, 4=K.
        assert!(
            e.mhp.contains(&(Label(1), Label(4))),
            "S really does overlap K: {:?}",
            e.mhp
        );
    }

    #[test]
    fn return_skips_the_rest_of_the_method() {
        // def f() { return; async {S} }  main { f(); K }
        // Dynamically S never runs; statically the conservative rule
        // still reports (S, K) — a known over-approximation.
        let p = prog(vec![
            (
                "f",
                vec![CAst::Return, CAst::Async(vec![CAst::Skip], false)],
            ),
            ("main", vec![CAst::Call("f".into()), CAst::Skip]),
        ]);
        let e = check_sound(&p);
        assert!(
            !e.mhp.contains(&(Label(2), Label(4))),
            "S is dead after the return"
        );
        let a = analyze_condensed(&p, Mode::ContextSensitive, SolverKind::Worklist);
        assert!(
            a.may_happen_in_parallel(Label(2), Label(4)),
            "the static rule keeps dead continuations (conservative)"
        );
    }

    #[test]
    fn finish_inside_branch_joins_dynamically() {
        let p = prog(vec![(
            "main",
            vec![
                CAst::If(
                    vec![CAst::Finish(vec![CAst::Async(vec![CAst::Skip], false)])],
                    vec![],
                ),
                CAst::Skip,
            ],
        )]);
        let e = check_sound(&p);
        // Labels: 0=if, 1=finish, 2=async, 3=S, 4=K.
        assert!(!e.mhp.contains(&(Label(3), Label(4))));
    }

    #[test]
    fn switch_cases_are_exclusive() {
        let p = prog(vec![(
            "main",
            vec![
                CAst::Switch(vec![
                    vec![CAst::Async(vec![CAst::Skip], false)],
                    vec![CAst::Skip],
                    vec![],
                ]),
                CAst::Skip,
            ],
        )]);
        let e = check_sound(&p);
        // Labels: 0=switch, 1=async, 2=S, 3=case2-skip, 4=K.
        assert!(e.mhp.contains(&(Label(2), Label(4))));
        assert!(!e.mhp.contains(&(Label(2), Label(3))));
    }
}
