//! Interpreter throughput: small-step transitions per second under each
//! scheduler. Not a paper table (the paper never executes FX10), but the
//! operational semantics is a first-class artifact here and its cost
//! model matters for the exhaustive explorer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fx10_semantics::{run, Scheduler};
use fx10_syntax::Program;

/// A busy terminating program: nested finishes over async fan-out,
/// repeated via bounded loops.
fn workload() -> Program {
    Program::parse(
        "def bump() { a[2] = a[2] + 1; }\n\
         def fan() {\n\
           finish {\n\
             async { bump(); bump(); }\n\
             async { bump(); bump(); }\n\
             async { bump(); }\n\
           }\n\
         }\n\
         def main() {\n\
           a[0] = 1;\n\
           a[1] = -8;\n\
           while (a[0] != 0) {\n\
             fan(); fan();\n\
             a[0] = a[1] + 1;\n\
             a[1] = a[3] + 1;\n\
           }\n\
         }",
    )
    .expect("workload parses")
}

fn bench_interp(c: &mut Criterion) {
    let p = workload();
    // Baseline run to size the throughput counter.
    let steps = run(&p, &[], Scheduler::Leftmost, 1_000_000).steps;
    let mut group = c.benchmark_group("interp_steps");
    group.throughput(Throughput::Elements(steps));
    for (name, sched) in [
        ("leftmost", Scheduler::Leftmost),
        ("rightmost", Scheduler::Rightmost),
        ("random", Scheduler::Random(7)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &sched, |b, s| {
            b.iter(|| std::hint::black_box(run(&p, &[], s.clone(), 1_000_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
