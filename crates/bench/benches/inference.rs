//! Figure 8 bench: context-sensitive type-inference time per benchmark.
//!
//! The paper's absolute times (153 ms … 16.5 s on a 2003-era Xeon) are
//! not reproducible; the target is the *ordering*: plasma ≫ mg ≫
//! raytracer/montecarlo ≫ the small benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fx10_core::analysis::SolverKind;
use fx10_core::Mode;
use fx10_frontend::gen::analyze_condensed;
use fx10_suite::all_benchmarks;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_cs");
    group.sample_size(10);
    for bm in all_benchmarks() {
        group.bench_with_input(
            BenchmarkId::from_parameter(bm.spec.name),
            &bm.program,
            |b, p| {
                b.iter(|| {
                    std::hint::black_box(analyze_condensed(
                        p,
                        Mode::ContextSensitive,
                        SolverKind::Naive,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
