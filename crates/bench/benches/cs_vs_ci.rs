//! Figure 9 bench: context-sensitive vs context-insensitive analysis on
//! the two large benchmarks (mg, plasma).
//!
//! Reproduction target (paper §7): CI is substantially slower on both —
//! the paper measured 5.0× on mg (5.2 s → 25.9 s) and 10.2× on plasma
//! (16.5 s → 167.8 s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fx10_core::analysis::SolverKind;
use fx10_core::Mode;
use fx10_frontend::gen::analyze_condensed;
use fx10_suite::benchmark;

fn bench_cs_vs_ci(c: &mut Criterion) {
    let mut group = c.benchmark_group("cs_vs_ci");
    group.sample_size(10);
    for name in ["mg", "plasma"] {
        let bm = benchmark(name).expect("benchmark exists");
        group.bench_with_input(
            BenchmarkId::new("context_sensitive", name),
            &bm.program,
            |b, p| {
                b.iter(|| {
                    std::hint::black_box(analyze_condensed(
                        p,
                        Mode::ContextSensitive,
                        SolverKind::Naive,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("context_insensitive", name),
            &bm.program,
            |b, p| {
                b.iter(|| {
                    std::hint::black_box(analyze_condensed(
                        p,
                        Mode::ContextInsensitive { keep_scross: true },
                        SolverKind::Naive,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cs_vs_ci);
criterion_main!(benches);
