//! Ablation: the paper's naive round-robin fixed-point iteration (§5.2)
//! vs our worklist solver vs SCC-condensation solvers (sequential and
//! multi-threaded), on a family of random condensed programs of growing
//! size. All compute the same least solution (property-tested in
//! `tests/equivalence.rs`); they differ in how much re-evaluation and
//! parallelism they exploit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fx10_core::analysis::SolverKind;
use fx10_core::Mode;
use fx10_frontend::gen::analyze_condensed;
use fx10_suite::{random_condensed, RandomConfig};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(10);
    for methods in [8usize, 24, 64] {
        let p = random_condensed(RandomConfig {
            methods,
            stmts_per_method: 8,
            max_depth: 3,
            seed: 42,
        });
        let nodes = p.label_count();
        group.bench_with_input(BenchmarkId::new("naive", nodes), &p, |b, p| {
            b.iter(|| {
                std::hint::black_box(analyze_condensed(
                    p,
                    Mode::ContextSensitive,
                    SolverKind::Naive,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("worklist", nodes), &p, |b, p| {
            b.iter(|| {
                std::hint::black_box(analyze_condensed(
                    p,
                    Mode::ContextSensitive,
                    SolverKind::Worklist,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("scc", nodes), &p, |b, p| {
            b.iter(|| {
                std::hint::black_box(analyze_condensed(
                    p,
                    Mode::ContextSensitive,
                    SolverKind::Scc,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("scc_parallel4", nodes), &p, |b, p| {
            b.iter(|| {
                std::hint::black_box(analyze_condensed(
                    p,
                    Mode::ContextSensitive,
                    SolverKind::SccParallel(4),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
