//! Exhaustive state-space exploration: the seed-style sequential cloned
//! explorer vs the hash-consed work-stealing engine, on the paper's
//! examples and a fan-out stress program. Two axes:
//!
//! - **clone vs intern**: cloned `Tree` values with string-digest
//!   visited sets vs 32-bit interned ids with O(1) equality/hashing,
//!   both sequential;
//! - **jobs scaling**: the interned engine at 1, 2 and 4 workers sharing
//!   one budget meter.
//!
//! This is the machinery behind the ground-truth (dynamic) MHP used to
//! validate Theorem 2/3 empirically; `figures bench-explore` emits the
//! same comparison as `BENCH_explore.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fx10_bench::fanout;
use fx10_semantics::{explore, explore_parallel, ExploreConfig};
use fx10_syntax::{examples, Program};

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);

    let cases: Vec<(&str, Program)> = vec![
        ("example_2_1", examples::example_2_1()),
        ("same_category", examples::same_category()),
        ("fanout5", fanout(5)),
    ];
    let seed_config = ExploreConfig {
        canonical_dedup: false,
        ..ExploreConfig::default()
    };
    for (name, p) in &cases {
        // Clone vs intern, both sequential.
        group.bench_with_input(BenchmarkId::new("cloned-seq-seed", name), p, |b, p| {
            b.iter(|| std::hint::black_box(explore(p, &[], seed_config)))
        });
        group.bench_with_input(BenchmarkId::new("cloned-seq", name), p, |b, p| {
            b.iter(|| std::hint::black_box(explore(p, &[], ExploreConfig::default())))
        });
        // Jobs scaling on the interned work-stealing engine.
        for jobs in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("interned{jobs}"), name),
                p,
                |b, p| {
                    b.iter(|| {
                        std::hint::black_box(explore_parallel(
                            p,
                            &[],
                            ExploreConfig::default(),
                            jobs,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
