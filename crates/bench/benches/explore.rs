//! Exhaustive state-space exploration: sequential vs multi-threaded
//! explorer on the paper's examples and a fan-out stress program. This is
//! the machinery behind the ground-truth (dynamic) MHP used to validate
//! Theorem 2/3 empirically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fx10_semantics::{explore, explore_parallel, ExploreConfig};
use fx10_syntax::{examples, Program};

fn fanout(width: usize) -> Program {
    let mut body = String::new();
    for i in 0..width {
        body.push_str(&format!("async {{ S{i}; T{i}; }}\n"));
    }
    Program::parse(&format!("def main() {{ finish {{ {body} }} K; }}")).expect("fanout parses")
}

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);

    let cases: Vec<(&str, Program)> = vec![
        ("example_2_1", examples::example_2_1()),
        ("same_category", examples::same_category()),
        ("fanout5", fanout(5)),
    ];
    for (name, p) in &cases {
        group.bench_with_input(BenchmarkId::new("sequential", name), p, |b, p| {
            b.iter(|| std::hint::black_box(explore(p, &[], ExploreConfig::default())))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", name), p, |b, p| {
            b.iter(|| std::hint::black_box(explore_parallel(p, &[], ExploreConfig::default(), 4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
