//! # fx10-bench
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! - [`fig5`] — the constraint system for the §2.1 example (Figure 5);
//! - [`fig6`] — static measurements: LOC, async counts/categories,
//!   constraint counts (Figure 6);
//! - [`fig7`] — condensed-form node counts (Figure 7);
//! - [`fig8`] — type-inference time/space/iterations and async-body MHP
//!   pairs with self/same/diff categories (Figure 8);
//! - [`fig9`] — context-sensitive vs context-insensitive on mg and plasma
//!   (Figure 9);
//! - [`example_2_2_report`] — the §2.2 / §7 walkthrough.
//!
//! Each function returns the formatted table with the paper's numbers
//! alongside ours; the `figures` binary prints them, and EXPERIMENTS.md
//! records a captured run. Criterion benches (in `benches/`) measure the
//! same pipelines under a statistics-grade harness.

use fx10_core::analysis::SolverKind;
use fx10_core::Mode;
use fx10_frontend::gen::{analyze_condensed, async_pairs_condensed, CondensedAnalysis};
use fx10_suite::benchmarks::{all_benchmarks, Benchmark};
use std::fmt::Write;

/// Runs the context-sensitive analysis on a benchmark (naive solver, so
/// iteration counts are meaningful).
pub fn run_cs(bm: &Benchmark) -> CondensedAnalysis {
    analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Naive)
}

/// Runs the context-insensitive baseline.
pub fn run_ci(bm: &Benchmark) -> CondensedAnalysis {
    analyze_condensed(
        &bm.program,
        Mode::ContextInsensitive { keep_scross: true },
        SolverKind::Naive,
    )
}

/// Figure 5: the constraint systems generated for the §2.1 example.
pub fn fig5() -> String {
    let p = fx10_syntax::examples::example_2_1();
    let a = fx10_core::analyze(&p);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5 — constraints for the Section 2.1 example\n");
    out.push_str(&fx10_core::gen::render_constraints(
        &p,
        a.index(),
        a.generated(),
    ));
    let _ = writeln!(
        out,
        "\nsolved MHP pairs (paper: S2 x {{S5,S6,S7,S8,S11,S12,S13}}, S11 x S12, S7 x S11):"
    );
    for (x, y) in a.pairs_named(&p) {
        let _ = writeln!(out, "  ({x}, {y})");
    }
    out
}

/// Figure 6: static measurements. Paper constraint counts are shown next
/// to ours — the counting scheme differs slightly (we count one Slabels /
/// level-2 constraint per node plus one per method), so the columns are
/// expected to be close but not identical; asyncs and LOC match exactly.
pub fn fig6() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6 — static measurements (paper values in [brackets])\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>6} | {:>5} {:>5} {:>6} | {:>15} {:>15} {:>15}",
        "benchmark", "LOC", "async", "loop", "place", "Slabels", "level-1", "level-2"
    );
    for bm in all_benchmarks() {
        let st = bm.program.async_stats();
        let a = run_cs(&bm);
        let _ = writeln!(
            out,
            "{:<12} {:>6} | {:>5} {:>5} {:>6} | {:>6} [{:>6}] {:>6} [{:>6}] {:>6} [{:>6}]",
            bm.spec.name,
            bm.program.loc,
            st.total,
            st.loop_asyncs,
            st.place_switch,
            a.stats.slabels_constraints,
            bm.spec.paper_constraints[0],
            a.stats.level1_constraints,
            bm.spec.paper_constraints[1],
            a.stats.level2_constraints,
            bm.spec.paper_constraints[2],
        );
    }
    out
}

/// Figure 7: node counts by kind. These match the paper **exactly** (the
/// generator enforces them).
pub fn fig7() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 7 — condensed-form node counts (exact)\n");
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>5} {:>6} {:>5} {:>7} {:>4} {:>5} {:>7} {:>7} {:>5} {:>7}",
        "benchmark",
        "Total",
        "End",
        "Async",
        "Call",
        "Finish",
        "If",
        "Loop",
        "Method",
        "Return",
        "Skip",
        "Switch"
    );
    for bm in all_benchmarks() {
        let c = bm.program.node_counts();
        assert_eq!(c, bm.spec.nodes, "{} diverged from Figure 7", bm.spec.name);
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>5} {:>6} {:>5} {:>7} {:>4} {:>5} {:>7} {:>7} {:>5} {:>7}",
            bm.spec.name,
            c.total(),
            c.end,
            c.async_,
            c.call,
            c.finish,
            c.if_,
            c.loop_,
            c.method,
            c.return_,
            c.skip,
            c.switch
        );
    }
    out
}

/// One measured Figure 8 row.
pub struct Fig8Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured analysis time (ms).
    pub time_ms: f64,
    /// Measured solved-set footprint (MB).
    pub space_mb: f64,
    /// Measured iterations: Slabels, level-1, level-2.
    pub iters: [usize; 3],
    /// Measured async-body pairs: total, self, same, diff.
    pub pairs: [usize; 4],
}

/// Measures one benchmark under CS.
pub fn fig8_row(bm: &Benchmark) -> Fig8Row {
    let a = run_cs(bm);
    let rep = async_pairs_condensed(&a);
    Fig8Row {
        name: bm.spec.name,
        time_ms: a.stats.millis,
        space_mb: a.stats.bytes as f64 / 1e6,
        iters: [
            a.stats.slabels_passes,
            a.stats.level1_passes,
            a.stats.level2_passes,
        ],
        pairs: [
            rep.total(),
            rep.self_pairs,
            rep.same_method,
            rep.diff_method,
        ],
    }
}

/// Figure 8: type-inference measurements for all 13 benchmarks.
pub fn fig8() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8 — type inference (ours vs [paper]; absolute times are\n\
         machine-dependent — orderings and the iteration structure are the\n\
         reproduction targets)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>9} | {:>12} {:>12} | {:>18} {:>18}",
        "benchmark",
        "time(ms)",
        "space(MB)",
        "iters S/1/2",
        "[paper S/1/2]",
        "pairs t/s/s/d",
        "[paper t/s/s/d]"
    );
    for bm in all_benchmarks() {
        let r = fig8_row(&bm);
        let paper = bm.spec.fig8;
        let _ = writeln!(
            out,
            "{:<12} {:>9.1} {:>9.2} | {:>4}/{:>2}/{:>2}    {:>6}/{:>2}/{:>2}    | {:>5}/{}/{}/{} {:>10}/{}/{}/{}",
            r.name,
            r.time_ms,
            r.space_mb,
            r.iters[0],
            r.iters[1],
            r.iters[2],
            paper.iters[0],
            paper.iters[1],
            paper.iters[2],
            r.pairs[0],
            r.pairs[1],
            r.pairs[2],
            r.pairs[3],
            paper.pairs[0],
            paper.pairs[1],
            paper.pairs[2],
            paper.pairs[3],
        );
    }
    out
}

/// Figure 9: CS vs CI on mg and plasma.
pub fn fig9() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9 — context-sensitive vs context-insensitive (mg, plasma)\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<20} {:>9} {:>9} {:>12} {:>18} {:>18}",
        "benchmark",
        "analysis",
        "time(ms)",
        "space(MB)",
        "iters S/1/2",
        "pairs t/s/s/d",
        "[paper t/s/s/d]"
    );
    for name in ["mg", "plasma"] {
        let bm = fx10_suite::benchmark(name).expect("benchmark exists");
        for (label, a, paper) in [
            ("context-sensitive", run_cs(&bm), Some(bm.spec.fig8)),
            ("context-insensitive", run_ci(&bm), bm.spec.fig9_ci),
        ] {
            let rep = async_pairs_condensed(&a);
            let pp = paper.map(|p| p.pairs).unwrap_or([0; 4]);
            let _ = writeln!(
                out,
                "{:<10} {:<20} {:>9.1} {:>9.2} {:>5}/{}/{}     {:>7}/{}/{}/{} {:>9}/{}/{}/{}",
                name,
                label,
                a.stats.millis,
                a.stats.bytes as f64 / 1e6,
                a.stats.slabels_passes,
                a.stats.level1_passes,
                a.stats.level2_passes,
                rep.total(),
                rep.self_pairs,
                rep.same_method,
                rep.diff_method,
                pp[0],
                pp[1],
                pp[2],
                pp[3],
            );
        }
    }
    let _ = writeln!(
        out,
        "\nexpected shape (paper §7): CI needs more time and space, more\n\
         level-1 iterations, and many more pairs — mostly in the diff column."
    );
    out
}

/// The §8 precision study the paper leaves to future work: compare the
/// static overapproximation against the dynamic underapproximation
/// (exhaustive exploration — exact on terminating programs) to measure
/// the analysis' false-positive rate, on the paper's examples and a
/// family of random programs.
pub fn precision(seeds: u64) -> String {
    use fx10_semantics::{explore, ExploreConfig};
    use fx10_suite::{random_fx10, RandomConfig};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Precision study (paper §8): static MHP vs exact dynamic MHP\n"
    );

    let named: Vec<(&str, fx10_syntax::Program)> = vec![
        ("example_2_1", fx10_syntax::examples::example_2_1()),
        ("example_2_2", fx10_syntax::examples::example_2_2()),
        ("self_category", fx10_syntax::examples::self_category()),
        ("same_category", fx10_syntax::examples::same_category()),
        (
            "conclusion_fp",
            fx10_syntax::examples::conclusion_false_positive(),
        ),
    ];
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>8}",
        "program", "static", "dynamic", "false+"
    );
    for (name, p) in &named {
        let a = fx10_core::analyze(p);
        let e = explore(
            p,
            &[],
            ExploreConfig {
                normalize_admin: true,
                ..ExploreConfig::default()
            },
        );
        assert!(!e.truncated);
        let fp = a.mhp().len() - e.mhp.len();
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>8}",
            name,
            a.mhp().len(),
            e.mhp.len(),
            fp
        );
    }

    let mut total_static = 0usize;
    let mut total_dynamic = 0usize;
    let mut exact = 0usize;
    let mut counted = 0usize;
    for seed in 0..seeds {
        let p = random_fx10(RandomConfig {
            methods: 1 + (seed % 4) as usize,
            stmts_per_method: 2 + (seed % 3) as usize,
            max_depth: 2,
            seed,
        });
        let e = explore(
            &p,
            &[],
            ExploreConfig {
                max_states: 30_000,
                normalize_admin: true,
                ..ExploreConfig::default()
            },
        );
        if e.truncated {
            continue;
        }
        counted += 1;
        let a = fx10_core::analyze(&p);
        total_static += a.mhp().len();
        total_dynamic += e.mhp.len();
        if a.mhp().len() == e.mhp.len() {
            exact += 1;
        }
    }
    let _ = writeln!(
        out,
        "\nrandom programs: {counted} fully explored; {exact} exactly precise;\n         {total_dynamic} dynamic pairs inside {total_static} static pairs\n         (every false positive stems from the §8 loop-runs-<2 pattern —\n         the paper found none on its benchmarks and identified this as\n         the one source)"
    );
    out
}

/// A fan-out stress program: `finish { async {S0;T0;} … async {Sn;Tn;} } K;`.
/// Each extra activity multiplies the interleaving space by ~3, so this is
/// the scaling fixture for the explorer benchmarks.
pub fn fanout(width: usize) -> fx10_syntax::Program {
    let mut body = String::new();
    for i in 0..width {
        body.push_str(&format!("async {{ S{i}; T{i}; }}\n"));
    }
    fx10_syntax::Program::parse(&format!("def main() {{ finish {{ {body} }} K; }}"))
        .expect("fanout parses")
}

/// One measured explorer configuration in the `BENCH_explore.json` report.
pub struct ExploreBenchRow {
    /// Engine label (`cloned-seq-seed`, `cloned-seq`, `interned`).
    pub engine: &'static str,
    /// Worker count (1 for the sequential engines).
    pub jobs: usize,
    /// States visited (differs between seed-literal and canonical dedup).
    pub visited: usize,
    /// Median wall-clock of three timed runs, in milliseconds.
    pub millis: f64,
}

fn median_millis(mut run: impl FnMut() -> usize) -> (usize, f64) {
    let visited = run(); // warm-up, and the row's state count
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            std::hint::black_box(run());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    (visited, samples[1])
}

/// Benchmarks the seed-style sequential cloned explorer against the
/// interned work-stealing engine at several worker counts, on one
/// fixture. Row order: seed-literal cloned, canonical cloned, then
/// interned at each of `jobs`.
pub fn bench_explore_fixture(p: &fx10_syntax::Program, jobs: &[usize]) -> Vec<ExploreBenchRow> {
    use fx10_semantics::{explore, explore_parallel, ExploreConfig};
    let seed_config = ExploreConfig {
        canonical_dedup: false,
        ..ExploreConfig::default()
    };
    let mut rows = Vec::new();
    let (visited, millis) = median_millis(|| explore(p, &[], seed_config).visited);
    rows.push(ExploreBenchRow {
        engine: "cloned-seq-seed",
        jobs: 1,
        visited,
        millis,
    });
    let (visited, millis) = median_millis(|| explore(p, &[], ExploreConfig::default()).visited);
    rows.push(ExploreBenchRow {
        engine: "cloned-seq",
        jobs: 1,
        visited,
        millis,
    });
    for &j in jobs {
        let (visited, millis) =
            median_millis(|| explore_parallel(p, &[], ExploreConfig::default(), j).visited);
        rows.push(ExploreBenchRow {
            engine: "interned",
            jobs: j,
            visited,
            millis,
        });
    }
    rows
}

/// The `BENCH_explore.json` report: sequential-vs-parallel and
/// clone-vs-intern on the paper examples plus fan-out stress fixtures.
/// The headline `speedup_interned_jobs4_vs_seed` field is measured on the
/// largest fixture (the PR's acceptance bar is ≥ 2x).
pub fn bench_explore_json() -> String {
    let fixtures: Vec<(&str, fx10_syntax::Program)> = vec![
        ("example_2_1", fx10_syntax::examples::example_2_1()),
        ("same_category", fx10_syntax::examples::same_category()),
        ("fanout5", fanout(5)),
        ("fanout6", fanout(6)),
    ];
    let jobs = [1usize, 2, 4];
    let mut out = String::new();
    out.push_str("{\n  \"fixtures\": [\n");
    let mut headline = 0.0f64;
    for (i, (name, p)) in fixtures.iter().enumerate() {
        let rows = bench_explore_fixture(p, &jobs);
        let seed_ms = rows[0].millis;
        let jobs4_ms = rows
            .iter()
            .find(|r| r.engine == "interned" && r.jobs == 4)
            .map(|r| r.millis)
            .unwrap_or(f64::INFINITY);
        let speedup = seed_ms / jobs4_ms;
        if i + 1 == fixtures.len() {
            headline = speedup;
        }
        let _ = writeln!(out, "    {{\n      \"name\": \"{name}\",");
        let _ = writeln!(out, "      \"rows\": [");
        for (j, r) in rows.iter().enumerate() {
            let comma = if j + 1 == rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "        {{\"engine\": \"{}\", \"jobs\": {}, \"visited\": {}, \"millis\": {:.3}}}{comma}",
                r.engine, r.jobs, r.visited, r.millis
            );
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(
            out,
            "      \"speedup_interned_jobs4_vs_seed\": {speedup:.2}"
        );
        let comma = if i + 1 == fixtures.len() { "" } else { "," };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"largest_fixture_speedup_interned_jobs4_vs_seed\": {headline:.2}"
    );
    out.push_str("}\n");
    out
}

/// A straight-line fanout workload for the runtime benchmark: `width`
/// asyncs under one finish, each performing `reps` increments of its own
/// cell. Race-free by construction, so every engine must produce the
/// same array and step count — the benchmark measures scheduling
/// overhead and speedup, not divergence.
fn runtime_fanout(width: usize, reps: usize) -> fx10_syntax::Program {
    let mut src = String::from("def main() { finish { ");
    for w in 0..width {
        src.push_str("async { ");
        for _ in 0..reps {
            let _ = write!(src, "a[{w}] = a[{w}] + 1; ");
        }
        src.push_str("} ");
    }
    src.push_str("} }");
    fx10_syntax::Program::parse(&src).expect("runtime fanout parses")
}

/// A grid workload: `rows` sequential finish barriers, each fanning out
/// `cols` asyncs of `reps` increments on distinct cells — alternating
/// parallel bursts and joins, the shape work-stealing runtimes find
/// hardest relative to a serial loop.
fn runtime_grid(rows: usize, cols: usize, reps: usize) -> fx10_syntax::Program {
    let mut src = String::from("def main() { ");
    for _ in 0..rows {
        src.push_str("finish { ");
        for c in 0..cols {
            src.push_str("async { ");
            for _ in 0..reps {
                let _ = write!(src, "a[{c}] = a[{c}] + 1; ");
            }
            src.push_str("} ");
        }
        src.push_str("} ");
    }
    src.push('}');
    fx10_syntax::Program::parse(&src).expect("runtime grid parses")
}

/// One measured engine configuration in the `BENCH_run.json` report.
pub struct RunBenchRow {
    /// Engine label (`elide` or `steal`).
    pub engine: &'static str,
    /// Worker count (1 for the serial elider).
    pub jobs: usize,
    /// Executed instructions (identical across engines on these
    /// race-free workloads — asserted, not assumed).
    pub steps: u64,
    /// Median wall-clock of three timed runs, in milliseconds.
    pub millis: f64,
}

/// Benchmarks serial sequential elision against the work-stealing
/// runtime at several worker counts on one workload.
pub fn bench_run_fixture(p: &fx10_syntax::Program, jobs: &[usize]) -> Vec<RunBenchRow> {
    use fx10_robust::{Budget, CancelToken, FaultPlan};
    use fx10_runtime::{run_elision, run_parallel, RtConfig};
    let mut rows = Vec::new();
    let elide = || {
        run_elision(p, &[], u64::MAX, Budget::unlimited(), &CancelToken::new())
            .expect("elision succeeds")
    };
    let reference = elide();
    assert!(reference.completed, "bench workload must complete");
    let (_, millis) = median_millis(|| elide().steps as usize);
    rows.push(RunBenchRow {
        engine: "elide",
        jobs: 1,
        steps: reference.steps,
        millis,
    });
    for &j in jobs {
        let cfg = RtConfig {
            jobs: j,
            seed: 0,
            grain: 0,
            max_steps: u64::MAX,
        };
        let par = || {
            run_parallel(
                p,
                &[],
                &cfg,
                Budget::unlimited(),
                &CancelToken::new(),
                &FaultPlan::none(),
            )
            .expect("parallel run succeeds")
        };
        let check = par();
        assert_eq!(
            check.array, reference.array,
            "race-free bench workload diverged from elision at jobs={j}"
        );
        let (_, millis) = median_millis(|| par().steps as usize);
        rows.push(RunBenchRow {
            engine: "steal",
            jobs: j,
            steps: check.steps,
            millis,
        });
    }
    rows
}

/// The `BENCH_run.json` report: sequential elision vs the work-stealing
/// runtime (jobs 1/2/4/8) on straight-line fanout and grid workloads.
/// Each fixture's parallel arrays are asserted byte-identical to the
/// serial elision before timing — the benchmark doubles as a coarse
/// elision-oracle smoke.
pub fn bench_run_json() -> String {
    let fixtures: Vec<(&str, fx10_syntax::Program)> = vec![
        ("fanout8x400", runtime_fanout(8, 400)),
        ("fanout16x200", runtime_fanout(16, 200)),
        ("grid4x4x200", runtime_grid(4, 4, 200)),
    ];
    let jobs = [1usize, 2, 4, 8];
    let mut out = String::new();
    out.push_str("{\n  \"fixtures\": [\n");
    for (i, (name, p)) in fixtures.iter().enumerate() {
        let rows = bench_run_fixture(p, &jobs);
        let elide_ms = rows[0].millis;
        let jobs4_ms = rows
            .iter()
            .find(|r| r.engine == "steal" && r.jobs == 4)
            .map(|r| r.millis)
            .unwrap_or(f64::INFINITY);
        let _ = writeln!(out, "    {{\n      \"name\": \"{name}\",");
        let _ = writeln!(out, "      \"rows\": [");
        for (j, r) in rows.iter().enumerate() {
            let comma = if j + 1 == rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "        {{\"engine\": \"{}\", \"jobs\": {}, \"steps\": {}, \"millis\": {:.3}}}{comma}",
                r.engine, r.jobs, r.steps, r.millis
            );
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(
            out,
            "      \"speedup_steal_jobs4_vs_elide\": {:.2}",
            elide_ms / jobs4_ms
        );
        let comma = if i + 1 == fixtures.len() { "" } else { "," };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `BENCH_absint.json` report: a domain sweep (const / interval /
/// parity) of the abstract interpreter over the chaos fixture, the paper
/// examples, a fan-out stress program and a few random-suite seeds. Each
/// row records the fixpoint cost (median of three timed runs), the
/// convergence stats, and the oracle's precision as pruned MHP pairs.
pub fn bench_absint_json() -> String {
    use fx10_absint::{Domain, FeasibilityOracle};
    use fx10_suite::{random_fx10, RandomConfig};

    let chaos_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../programs/chaos_wide.fx10"
    );
    let chaos = std::fs::read_to_string(chaos_path)
        .ok()
        .and_then(|s| fx10_syntax::Program::parse(&s).ok());
    let mut fixtures: Vec<(String, fx10_syntax::Program)> = vec![
        ("example_2_1".into(), fx10_syntax::examples::example_2_1()),
        (
            "same_category".into(),
            fx10_syntax::examples::same_category(),
        ),
        ("fanout5".into(), fanout(5)),
    ];
    if let Some(p) = chaos {
        fixtures.push(("chaos_wide".into(), p));
    }
    for seed in [11u64, 42, 77] {
        let cfg = RandomConfig {
            methods: 3,
            stmts_per_method: 4,
            max_depth: 2,
            seed,
        };
        fixtures.push((format!("random_seed{seed}"), random_fx10(cfg)));
    }

    let mut out = String::new();
    out.push_str("{\n  \"fixtures\": [\n");
    for (i, (name, p)) in fixtures.iter().enumerate() {
        let cs = fx10_core::analyze(p);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{name}\",");
        let _ = writeln!(out, "      \"labels\": {},", p.label_count());
        let _ = writeln!(out, "      \"mhp_pairs\": {},", cs.mhp().len());
        out.push_str("      \"domains\": [\n");
        for (j, &d) in Domain::ALL.iter().enumerate() {
            let (reachable, millis) = median_millis(|| {
                FeasibilityOracle::build(p, &cs, d, None)
                    .facts
                    .reachable_count()
            });
            let oracle = FeasibilityOracle::build(p, &cs, d, None);
            let report = oracle.prune(&cs);
            let _ = write!(
                out,
                "        {{\"domain\": \"{d}\", \"millis\": {millis:.3}, \
                 \"rounds\": {}, \"capped\": {}, \"reachable\": {reachable}, \
                 \"pruned_pairs\": {}}}",
                oracle.facts.rounds(),
                oracle.facts.capped(),
                report.pruned.len()
            );
            out.push_str(if j + 1 < Domain::ALL.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n");
        let comma = if i + 1 < fixtures.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// The §2.2 / §7 walkthrough: CS avoids the (S3, S4) false positive, CI
/// produces it.
pub fn example_2_2_report() -> String {
    use fx10_syntax::examples;
    let p = examples::example_2_2();
    let cs = fx10_core::analyze(&p);
    let ci = fx10_core::analyze_ci(&p);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 2.2 example — modular interprocedural analysis\n"
    );
    let _ = writeln!(out, "context-sensitive pairs:");
    for (a, b) in cs.pairs_named(&p) {
        let _ = writeln!(out, "  ({a}, {b})");
    }
    let _ = writeln!(out, "context-insensitive pairs:");
    for (a, b) in ci.pairs_named(&p) {
        let _ = writeln!(out, "  ({a}, {b})");
    }
    let s3 = p.labels().lookup("S3").unwrap();
    let s4 = p.labels().lookup("S4").unwrap();
    let _ = writeln!(
        out,
        "\n(S3, S4): CS = {}, CI = {}   [paper: CS avoids it, CI reports it]",
        cs.may_happen_in_parallel(s3, s4),
        ci.may_happen_in_parallel(s3, s4)
    );
    out
}

/// Locates the `fx10` CLI binary the sharded explorer spawns as its
/// worker processes: `$FX10_BIN` if set, else a sibling of the running
/// `figures` binary (both live in the same cargo target directory).
fn fx10_binary() -> Result<std::path::PathBuf, String> {
    if let Ok(p) = std::env::var("FX10_BIN") {
        return Ok(p.into());
    }
    let me = std::env::current_exe().map_err(|e| e.to_string())?;
    let sibling = me.with_file_name("fx10");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "{} not found — build it with `cargo build --release -p fx10-cli` \
             or point FX10_BIN at it",
            sibling.display()
        ))
    }
}

/// The `BENCH_shard.json` report: multi-process sharded exploration vs
/// the in-process engines on the two chaos fixtures. Each sharded row
/// records states/sec plus the supervisor's restart and migration
/// counts; a final chaos row SIGKILLs one shard at its first checkpoint
/// to price a restart-and-replay cycle.
pub fn bench_shard_json() -> Result<String, String> {
    use fx10_robust::{backoff::RestartPolicy, Budget, CancelToken};
    use fx10_semantics::{explore_budgeted, explore_sharded, ExploreConfig, ShardedOptions};

    let exe = fx10_binary()?;
    let config = ExploreConfig {
        max_states: 2_000_000,
        ..ExploreConfig::default()
    };
    let mut out = String::new();
    out.push_str("{\n  \"fixtures\": [\n");
    // CI's smoke job trims the sweep with FX10_BENCH_SHARD_FIXTURES
    // (comma-separated); the full report covers both chaos fixtures.
    let selected = std::env::var("FX10_BENCH_SHARD_FIXTURES")
        .unwrap_or_else(|_| "chaos_wide,chaos_grid".to_string());
    let fixture_names: Vec<String> = selected.split(',').map(|s| s.trim().to_string()).collect();
    for (i, name) in fixture_names.iter().enumerate() {
        let path = format!(
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs/{}.fx10"),
            name
        );
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let p = fx10_syntax::Program::parse(&text).map_err(|e| format!("{path}: {e}"))?;

        let t = std::time::Instant::now();
        let seq = explore_budgeted(&p, &[], config, Budget::unlimited(), &CancelToken::new())
            .map_err(|e| e.to_string())?;
        let seq_ms = t.elapsed().as_secs_f64() * 1e3;
        let _ = writeln!(out, "    {{\n      \"name\": \"{name}\",");
        let _ = writeln!(out, "      \"rows\": [");
        let _ = writeln!(
            out,
            "        {{\"engine\": \"sequential\", \"shards\": 0, \"visited\": {}, \
             \"millis\": {:.1}, \"states_per_sec\": {:.0}, \"restarts\": 0, \"migrations\": 0}},",
            seq.visited,
            seq_ms,
            seq.visited as f64 / (seq_ms / 1e3)
        );

        let runs: &[(usize, Option<(u32, u32)>)] =
            &[(1, None), (2, None), (4, None), (4, Some((1, 1)))];
        for (j, &(shards, chaos_kill)) in runs.iter().enumerate() {
            let ckpt_dir = std::env::temp_dir().join(format!(
                "fx10-bench-shard-{name}-{shards}-{}-{}",
                chaos_kill.is_some(),
                std::process::id()
            ));
            let opts = ShardedOptions {
                shards,
                worker_exe: exe.clone(),
                ckpt_dir: ckpt_dir.clone(),
                ckpt_every: 4096,
                policy: RestartPolicy::default(),
                chaos_kill,
                ..ShardedOptions::default()
            };
            let t = std::time::Instant::now();
            let (e, prov) = explore_sharded(&p, &[], &config, &opts, &CancelToken::new())
                .map_err(|e| e.to_string())?;
            let ms = t.elapsed().as_secs_f64() * 1e3;
            let _ = std::fs::remove_dir_all(&ckpt_dir);
            if e.visited != seq.visited {
                return Err(format!(
                    "differential failure on {name} at {shards} shard(s): \
                     {} visited vs sequential {}",
                    e.visited, seq.visited
                ));
            }
            let engine = if chaos_kill.is_some() {
                "sharded+kill"
            } else {
                "sharded"
            };
            let comma = if j + 1 == runs.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "        {{\"engine\": \"{engine}\", \"shards\": {shards}, \"visited\": {}, \
                 \"millis\": {ms:.1}, \"states_per_sec\": {:.0}, \"restarts\": {}, \
                 \"migrations\": {}}}{comma}",
                e.visited,
                e.visited as f64 / (ms / 1e3),
                prov.restarts,
                prov.migrations
            );
        }
        let _ = writeln!(out, "      ]");
        let comma = if i + 1 == fixture_names.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_study_runs() {
        let t = precision(20);
        assert!(t.contains("example_2_1"), "{t}");
        assert!(t.contains("fully explored"), "{t}");
    }

    #[test]
    fn fig5_contains_paper_shapes() {
        let t = fig5();
        assert!(t.contains("m_S11 = Lcross(S11, r_S11)"), "{t}");
        assert!(t.contains("(S11, S12)"), "{t}");
    }

    #[test]
    fn example_2_2_report_shows_divergence() {
        let t = example_2_2_report();
        assert!(t.contains("CS = false, CI = true"), "{t}");
    }

    #[test]
    fn explore_bench_rows_cover_both_engines() {
        let p = fx10_syntax::examples::example_2_1();
        let rows = bench_explore_fixture(&p, &[1, 2]);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].engine, "cloned-seq-seed");
        assert_eq!(rows[1].engine, "cloned-seq");
        assert!(rows[2..].iter().all(|r| r.engine == "interned"));
        // The seed-literal space is never smaller than the canonical one,
        // and the interned engine agrees with the canonical cloned one.
        assert!(rows[0].visited >= rows[1].visited);
        assert!(rows[2..].iter().all(|r| r.visited == rows[1].visited));
        assert!(rows.iter().all(|r| r.millis >= 0.0));
    }
}
