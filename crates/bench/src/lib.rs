//! # fx10-bench
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! - [`fig5`] — the constraint system for the §2.1 example (Figure 5);
//! - [`fig6`] — static measurements: LOC, async counts/categories,
//!   constraint counts (Figure 6);
//! - [`fig7`] — condensed-form node counts (Figure 7);
//! - [`fig8`] — type-inference time/space/iterations and async-body MHP
//!   pairs with self/same/diff categories (Figure 8);
//! - [`fig9`] — context-sensitive vs context-insensitive on mg and plasma
//!   (Figure 9);
//! - [`example_2_2_report`] — the §2.2 / §7 walkthrough.
//!
//! Each function returns the formatted table with the paper's numbers
//! alongside ours; the `figures` binary prints them, and EXPERIMENTS.md
//! records a captured run. Criterion benches (in `benches/`) measure the
//! same pipelines under a statistics-grade harness.

use fx10_core::analysis::SolverKind;
use fx10_core::Mode;
use fx10_frontend::gen::{analyze_condensed, async_pairs_condensed, CondensedAnalysis};
use fx10_suite::benchmarks::{all_benchmarks, Benchmark};
use std::fmt::Write;

/// Runs the context-sensitive analysis on a benchmark (naive solver, so
/// iteration counts are meaningful).
pub fn run_cs(bm: &Benchmark) -> CondensedAnalysis {
    analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Naive)
}

/// Runs the context-insensitive baseline.
pub fn run_ci(bm: &Benchmark) -> CondensedAnalysis {
    analyze_condensed(
        &bm.program,
        Mode::ContextInsensitive { keep_scross: true },
        SolverKind::Naive,
    )
}

/// Figure 5: the constraint systems generated for the §2.1 example.
pub fn fig5() -> String {
    let p = fx10_syntax::examples::example_2_1();
    let a = fx10_core::analyze(&p);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5 — constraints for the Section 2.1 example\n");
    out.push_str(&fx10_core::gen::render_constraints(
        &p,
        a.index(),
        a.generated(),
    ));
    let _ = writeln!(
        out,
        "\nsolved MHP pairs (paper: S2 x {{S5,S6,S7,S8,S11,S12,S13}}, S11 x S12, S7 x S11):"
    );
    for (x, y) in a.pairs_named(&p) {
        let _ = writeln!(out, "  ({x}, {y})");
    }
    out
}

/// Figure 6: static measurements. Paper constraint counts are shown next
/// to ours — the counting scheme differs slightly (we count one Slabels /
/// level-2 constraint per node plus one per method), so the columns are
/// expected to be close but not identical; asyncs and LOC match exactly.
pub fn fig6() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6 — static measurements (paper values in [brackets])\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>6} | {:>5} {:>5} {:>6} | {:>15} {:>15} {:>15}",
        "benchmark", "LOC", "async", "loop", "place", "Slabels", "level-1", "level-2"
    );
    for bm in all_benchmarks() {
        let st = bm.program.async_stats();
        let a = run_cs(&bm);
        let _ = writeln!(
            out,
            "{:<12} {:>6} | {:>5} {:>5} {:>6} | {:>6} [{:>6}] {:>6} [{:>6}] {:>6} [{:>6}]",
            bm.spec.name,
            bm.program.loc,
            st.total,
            st.loop_asyncs,
            st.place_switch,
            a.stats.slabels_constraints,
            bm.spec.paper_constraints[0],
            a.stats.level1_constraints,
            bm.spec.paper_constraints[1],
            a.stats.level2_constraints,
            bm.spec.paper_constraints[2],
        );
    }
    out
}

/// Figure 7: node counts by kind. These match the paper **exactly** (the
/// generator enforces them).
pub fn fig7() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 7 — condensed-form node counts (exact)\n");
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>5} {:>6} {:>5} {:>7} {:>4} {:>5} {:>7} {:>7} {:>5} {:>7}",
        "benchmark",
        "Total",
        "End",
        "Async",
        "Call",
        "Finish",
        "If",
        "Loop",
        "Method",
        "Return",
        "Skip",
        "Switch"
    );
    for bm in all_benchmarks() {
        let c = bm.program.node_counts();
        assert_eq!(c, bm.spec.nodes, "{} diverged from Figure 7", bm.spec.name);
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>5} {:>6} {:>5} {:>7} {:>4} {:>5} {:>7} {:>7} {:>5} {:>7}",
            bm.spec.name,
            c.total(),
            c.end,
            c.async_,
            c.call,
            c.finish,
            c.if_,
            c.loop_,
            c.method,
            c.return_,
            c.skip,
            c.switch
        );
    }
    out
}

/// One measured Figure 8 row.
pub struct Fig8Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured analysis time (ms).
    pub time_ms: f64,
    /// Measured solved-set footprint (MB).
    pub space_mb: f64,
    /// Measured iterations: Slabels, level-1, level-2.
    pub iters: [usize; 3],
    /// Measured async-body pairs: total, self, same, diff.
    pub pairs: [usize; 4],
}

/// Measures one benchmark under CS.
pub fn fig8_row(bm: &Benchmark) -> Fig8Row {
    let a = run_cs(bm);
    let rep = async_pairs_condensed(&a);
    Fig8Row {
        name: bm.spec.name,
        time_ms: a.stats.millis,
        space_mb: a.stats.bytes as f64 / 1e6,
        iters: [
            a.stats.slabels_passes,
            a.stats.level1_passes,
            a.stats.level2_passes,
        ],
        pairs: [
            rep.total(),
            rep.self_pairs,
            rep.same_method,
            rep.diff_method,
        ],
    }
}

/// Figure 8: type-inference measurements for all 13 benchmarks.
pub fn fig8() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8 — type inference (ours vs [paper]; absolute times are\n\
         machine-dependent — orderings and the iteration structure are the\n\
         reproduction targets)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>9} | {:>12} {:>12} | {:>18} {:>18}",
        "benchmark",
        "time(ms)",
        "space(MB)",
        "iters S/1/2",
        "[paper S/1/2]",
        "pairs t/s/s/d",
        "[paper t/s/s/d]"
    );
    for bm in all_benchmarks() {
        let r = fig8_row(&bm);
        let paper = bm.spec.fig8;
        let _ = writeln!(
            out,
            "{:<12} {:>9.1} {:>9.2} | {:>4}/{:>2}/{:>2}    {:>6}/{:>2}/{:>2}    | {:>5}/{}/{}/{} {:>10}/{}/{}/{}",
            r.name,
            r.time_ms,
            r.space_mb,
            r.iters[0],
            r.iters[1],
            r.iters[2],
            paper.iters[0],
            paper.iters[1],
            paper.iters[2],
            r.pairs[0],
            r.pairs[1],
            r.pairs[2],
            r.pairs[3],
            paper.pairs[0],
            paper.pairs[1],
            paper.pairs[2],
            paper.pairs[3],
        );
    }
    out
}

/// Figure 9: CS vs CI on mg and plasma.
pub fn fig9() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9 — context-sensitive vs context-insensitive (mg, plasma)\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<20} {:>9} {:>9} {:>12} {:>18} {:>18}",
        "benchmark",
        "analysis",
        "time(ms)",
        "space(MB)",
        "iters S/1/2",
        "pairs t/s/s/d",
        "[paper t/s/s/d]"
    );
    for name in ["mg", "plasma"] {
        let bm = fx10_suite::benchmark(name).expect("benchmark exists");
        for (label, a, paper) in [
            ("context-sensitive", run_cs(&bm), Some(bm.spec.fig8)),
            ("context-insensitive", run_ci(&bm), bm.spec.fig9_ci),
        ] {
            let rep = async_pairs_condensed(&a);
            let pp = paper.map(|p| p.pairs).unwrap_or([0; 4]);
            let _ = writeln!(
                out,
                "{:<10} {:<20} {:>9.1} {:>9.2} {:>5}/{}/{}     {:>7}/{}/{}/{} {:>9}/{}/{}/{}",
                name,
                label,
                a.stats.millis,
                a.stats.bytes as f64 / 1e6,
                a.stats.slabels_passes,
                a.stats.level1_passes,
                a.stats.level2_passes,
                rep.total(),
                rep.self_pairs,
                rep.same_method,
                rep.diff_method,
                pp[0],
                pp[1],
                pp[2],
                pp[3],
            );
        }
    }
    let _ = writeln!(
        out,
        "\nexpected shape (paper §7): CI needs more time and space, more\n\
         level-1 iterations, and many more pairs — mostly in the diff column."
    );
    out
}

/// The §8 precision study the paper leaves to future work: compare the
/// static overapproximation against the dynamic underapproximation
/// (exhaustive exploration — exact on terminating programs) to measure
/// the analysis' false-positive rate, on the paper's examples and a
/// family of random programs.
pub fn precision(seeds: u64) -> String {
    use fx10_semantics::{explore, ExploreConfig};
    use fx10_suite::{random_fx10, RandomConfig};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Precision study (paper §8): static MHP vs exact dynamic MHP\n"
    );

    let named: Vec<(&str, fx10_syntax::Program)> = vec![
        ("example_2_1", fx10_syntax::examples::example_2_1()),
        ("example_2_2", fx10_syntax::examples::example_2_2()),
        ("self_category", fx10_syntax::examples::self_category()),
        ("same_category", fx10_syntax::examples::same_category()),
        (
            "conclusion_fp",
            fx10_syntax::examples::conclusion_false_positive(),
        ),
    ];
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>8}",
        "program", "static", "dynamic", "false+"
    );
    for (name, p) in &named {
        let a = fx10_core::analyze(p);
        let e = explore(
            p,
            &[],
            ExploreConfig {
                normalize_admin: true,
                ..ExploreConfig::default()
            },
        );
        assert!(!e.truncated);
        let fp = a.mhp().len() - e.mhp.len();
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>8}",
            name,
            a.mhp().len(),
            e.mhp.len(),
            fp
        );
    }

    let mut total_static = 0usize;
    let mut total_dynamic = 0usize;
    let mut exact = 0usize;
    let mut counted = 0usize;
    for seed in 0..seeds {
        let p = random_fx10(RandomConfig {
            methods: 1 + (seed % 4) as usize,
            stmts_per_method: 2 + (seed % 3) as usize,
            max_depth: 2,
            seed,
        });
        let e = explore(
            &p,
            &[],
            ExploreConfig {
                max_states: 30_000,
                normalize_admin: true,
            },
        );
        if e.truncated {
            continue;
        }
        counted += 1;
        let a = fx10_core::analyze(&p);
        total_static += a.mhp().len();
        total_dynamic += e.mhp.len();
        if a.mhp().len() == e.mhp.len() {
            exact += 1;
        }
    }
    let _ = writeln!(
        out,
        "\nrandom programs: {counted} fully explored; {exact} exactly precise;\n         {total_dynamic} dynamic pairs inside {total_static} static pairs\n         (every false positive stems from the §8 loop-runs-<2 pattern —\n         the paper found none on its benchmarks and identified this as\n         the one source)"
    );
    out
}

/// The §2.2 / §7 walkthrough: CS avoids the (S3, S4) false positive, CI
/// produces it.
pub fn example_2_2_report() -> String {
    use fx10_syntax::examples;
    let p = examples::example_2_2();
    let cs = fx10_core::analyze(&p);
    let ci = fx10_core::analyze_ci(&p);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 2.2 example — modular interprocedural analysis\n"
    );
    let _ = writeln!(out, "context-sensitive pairs:");
    for (a, b) in cs.pairs_named(&p) {
        let _ = writeln!(out, "  ({a}, {b})");
    }
    let _ = writeln!(out, "context-insensitive pairs:");
    for (a, b) in ci.pairs_named(&p) {
        let _ = writeln!(out, "  ({a}, {b})");
    }
    let s3 = p.labels().lookup("S3").unwrap();
    let s4 = p.labels().lookup("S4").unwrap();
    let _ = writeln!(
        out,
        "\n(S3, S4): CS = {}, CI = {}   [paper: CS avoids it, CI reports it]",
        cs.may_happen_in_parallel(s3, s4),
        ci.may_happen_in_parallel(s3, s4)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_study_runs() {
        let t = precision(20);
        assert!(t.contains("example_2_1"), "{t}");
        assert!(t.contains("fully explored"), "{t}");
    }

    #[test]
    fn fig5_contains_paper_shapes() {
        let t = fig5();
        assert!(t.contains("m_S11 = Lcross(S11, r_S11)"), "{t}");
        assert!(t.contains("(S11, S12)"), "{t}");
    }

    #[test]
    fn example_2_2_report_shows_divergence() {
        let t = example_2_2_report();
        assert!(t.contains("CS = false, CI = true"), "{t}");
    }
}
