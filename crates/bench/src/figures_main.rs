//! `figures` — prints the paper's evaluation tables.
//!
//! ```text
//! figures [fig5|fig6|fig7|fig8|fig9|example22|precision|all]
//! figures bench-explore [OUT.json]     # explorer benchmark report
//! figures bench-absint  [OUT.json]     # abstract-interpreter domain sweep
//! figures bench-shard   [OUT.json]     # multi-process sharded explorer
//! figures bench-run     [OUT.json]     # runtime: elision vs work stealing
//! ```
//!
//! `bench-explore` measures the seed-style sequential cloned explorer
//! against the interned work-stealing engine (jobs 1/2/4) and writes the
//! report to `OUT.json` (default `BENCH_explore.json`); CI uploads it as
//! an artifact.
//!
//! Run in release mode for meaningful times:
//! `cargo run --release -p fx10-bench --bin figures -- all`

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let print = |name: &str, body: fn() -> String| {
        println!("{}", body());
        println!("{}", "=".repeat(72));
        let _ = name;
    };
    match which.as_str() {
        "fig5" => print("fig5", fx10_bench::fig5),
        "fig6" => print("fig6", fx10_bench::fig6),
        "fig7" => print("fig7", fx10_bench::fig7),
        "fig8" => print("fig8", fx10_bench::fig8),
        "fig9" => print("fig9", fx10_bench::fig9),
        "example22" => print("example22", fx10_bench::example_2_2_report),
        "precision" => {
            println!("{}", fx10_bench::precision(200));
            println!("{}", "=".repeat(72));
        }
        "bench-explore" => {
            let out = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "BENCH_explore.json".to_string());
            let json = fx10_bench::bench_explore_json();
            print!("{json}");
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {out}");
        }
        "bench-shard" => {
            let out = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "BENCH_shard.json".to_string());
            let json = match fx10_bench::bench_shard_json() {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("bench-shard failed: {e}");
                    std::process::exit(1);
                }
            };
            print!("{json}");
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {out}");
        }
        "bench-run" => {
            let out = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "BENCH_run.json".to_string());
            let json = fx10_bench::bench_run_json();
            print!("{json}");
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {out}");
        }
        "bench-absint" => {
            let out = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "BENCH_absint.json".to_string());
            let json = fx10_bench::bench_absint_json();
            print!("{json}");
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {out}");
        }
        "all" => {
            for f in [
                fx10_bench::fig5 as fn() -> String,
                fx10_bench::example_2_2_report,
                fx10_bench::fig6,
                fx10_bench::fig7,
                fx10_bench::fig8,
                fx10_bench::fig9,
            ] {
                println!("{}", f());
                println!("{}", "=".repeat(72));
            }
            println!("{}", fx10_bench::precision(200));
            println!("{}", "=".repeat(72));
        }
        other => {
            eprintln!(
                "unknown figure `{other}`; expected fig5..fig9, example22, precision, or all"
            );
            std::process::exit(2);
        }
    }
}
