//! The CFX10 abstract syntax: one main statement, dense labels.

use fx10_syntax::Label;

/// One clocked-calculus instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CInstr {
    /// Dense program-unique label.
    pub label: Label,
    /// The instruction.
    pub kind: CKind,
}

/// The four instruction forms of CFX10.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CKind {
    /// `skip^l` — an opaque step.
    Skip,
    /// `async^l s` — spawn `s`, not registered on the clock.
    Async(CStmt),
    /// `casync^l s` — spawn `s`, registered at the parent's phase.
    CAsync(CStmt),
    /// `next^l` — the clock barrier.
    Next,
}

/// A non-empty instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CStmt {
    instrs: Vec<CInstr>,
}

impl CStmt {
    /// The instructions (never empty).
    pub fn instrs(&self) -> &[CInstr] {
        &self.instrs
    }

    /// The head instruction.
    pub fn head(&self) -> &CInstr {
        &self.instrs[0]
    }

    /// The continuation after the head, if any.
    pub fn tail(&self) -> Option<CStmt> {
        if self.instrs.len() > 1 {
            Some(CStmt {
                instrs: self.instrs[1..].to_vec(),
            })
        } else {
            None
        }
    }
}

/// A CFX10 program: the main activity's body, labels pre-assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CProgram {
    body: CStmt,
    label_count: usize,
}

/// Unlabeled builder nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// `skip;`
    Skip,
    /// `async { … }`
    Async(Vec<Node>),
    /// `casync { … }` (clocked)
    CAsync(Vec<Node>),
    /// `next;`
    Next,
}

impl CProgram {
    /// Assembles and labels a program; empty bodies become a `skip`.
    pub fn new(body: Vec<Node>) -> CProgram {
        fn lower(nodes: Vec<Node>, next: &mut u32) -> CStmt {
            let nodes = if nodes.is_empty() {
                vec![Node::Skip]
            } else {
                nodes
            };
            let instrs = nodes
                .into_iter()
                .map(|n| {
                    let label = Label(*next);
                    *next += 1;
                    let kind = match n {
                        Node::Skip => CKind::Skip,
                        Node::Next => CKind::Next,
                        Node::Async(b) => CKind::Async(lower(b, next)),
                        Node::CAsync(b) => CKind::CAsync(lower(b, next)),
                    };
                    CInstr { label, kind }
                })
                .collect();
            CStmt { instrs }
        }
        let mut next = 0u32;
        let body = lower(body, &mut next);
        CProgram {
            body,
            label_count: next as usize,
        }
    }

    /// The main activity's statement.
    pub fn body(&self) -> &CStmt {
        &self.body
    }

    /// Total labels.
    pub fn label_count(&self) -> usize {
        self.label_count
    }
}

/// `skip;`
pub fn skip() -> Node {
    Node::Skip
}

/// `next;`
pub fn next() -> Node {
    Node::Next
}

/// `async { body }`
pub fn async_(body: Vec<Node>) -> Node {
    Node::Async(body)
}

/// `casync { body }`
pub fn casync(body: Vec<Node>) -> Node {
    Node::CAsync(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_dense() {
        let p = CProgram::new(vec![
            casync(vec![skip(), next(), skip()]),
            next(),
            async_(vec![skip()]),
            skip(),
        ]);
        assert_eq!(p.label_count(), 8);
        fn collect(s: &CStmt, out: &mut Vec<u32>) {
            for i in s.instrs() {
                out.push(i.label.0);
                match &i.kind {
                    CKind::Async(b) | CKind::CAsync(b) => collect(b, out),
                    _ => {}
                }
            }
        }
        let mut seen = Vec::new();
        collect(p.body(), &mut seen);
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_bodies_become_skip() {
        let p = CProgram::new(vec![async_(vec![])]);
        assert_eq!(p.label_count(), 2);
    }
}
