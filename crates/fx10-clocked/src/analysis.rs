//! Static MHP for CFX10 with the phase refinement.
//!
//! Two layers:
//!
//! 1. **Base analysis** — the paper's async rules transplanted: `casync`
//!    is analyzed exactly like `async` (rule 54) and `next` like `skip`
//!    (rule 50/51). Sound but barrier-blind.
//! 2. **Phase refinement** — in CFX10 (no loops, no calls) every label
//!    executes at most once, and a label of an *always-registered*
//!    activity executes at exactly one clock phase, computable
//!    syntactically: the number of `next`s its activity performs before
//!    it. If `phase(x) ≠ phase(y)` (both defined), the barrier orders
//!    them: for `y` to run, every registered activity — including `x`'s —
//!    must have passed the intervening barriers, and `x` precedes its own
//!    activity's barrier calls. Hence the pair is subtracted.
//!
//! Labels inside unregistered activities (plain `async` bodies) have no
//! phase (`None`) and are never refined away. Property tests check the
//! refined set against the exhaustive explorer's ground truth — both
//! soundness and the paper-style "zero false positives" on the phase
//! structure.

use crate::ast::{CInstr, CKind, CProgram, CStmt};
use fx10_core::sets::{LabelSet, PairSet};
use fx10_syntax::Label;

/// The clock phase at which a label executes, if statically bound.
pub type Phase = Option<u32>;

/// The solved clocked analysis.
#[derive(Debug, Clone)]
pub struct ClockedAnalysis {
    /// The barrier-blind MHP over-approximation.
    pub base: PairSet,
    /// The phase-refined MHP (the deliverable).
    pub refined: PairSet,
    /// Per-label phase (`None` = phase-unbound).
    pub phases: Vec<Phase>,
}

impl ClockedAnalysis {
    /// May `a` and `b` happen in parallel (refined)?
    pub fn may_happen_in_parallel(&self, a: Label, b: Label) -> bool {
        self.refined.contains(a, b)
    }
}

/// All labels of a statement (the CFX10 `Slabels` — no calls, so a plain
/// recursive collection).
fn labels_of(s: &CStmt, n: usize) -> LabelSet {
    fn walk(s: &CStmt, out: &mut LabelSet) {
        for i in s.instrs() {
            out.insert(i.label);
            match &i.kind {
                CKind::Async(b) | CKind::CAsync(b) => walk(b, out),
                _ => {}
            }
        }
    }
    let mut out = LabelSet::empty(n);
    walk(s, &mut out);
    out
}

/// The base analysis: rules 50/51/54 with `next` as `skip` and `casync`
/// as `async`. Returns `(M, O)`.
fn analyze_stmt(s: &CStmt, r: &LabelSet, n: usize, m: &mut PairSet) -> LabelSet {
    let head: &CInstr = s.head();
    let l = head.label;
    let tail = s.tail();
    match &head.kind {
        CKind::Skip | CKind::Next => {
            m.add_lcross(l, r);
            match tail {
                None => r.clone(),
                Some(t) => analyze_stmt(&t, r, n, m),
            }
        }
        CKind::Async(body) | CKind::CAsync(body) => {
            m.add_lcross(l, r);
            match tail {
                None => {
                    let _ = analyze_stmt(body, r, n, m);
                    let mut o = labels_of(body, n);
                    o.union_with(r);
                    o
                }
                Some(t) => {
                    let mut r_body = labels_of(&t, n);
                    r_body.union_with(r);
                    let _ = analyze_stmt(body, &r_body, n, m);
                    let mut r_tail = labels_of(body, n);
                    r_tail.union_with(r);
                    analyze_stmt(&t, &r_tail, n, m)
                }
            }
        }
    }
}

/// Computes per-label phases. Returns the phase after the statement (for
/// threading through sequences).
fn assign_phases(s: &CStmt, registered: bool, mut phase: u32, out: &mut Vec<Phase>) -> u32 {
    for i in s.instrs() {
        out[i.label.index()] = if registered { Some(phase) } else { None };
        match &i.kind {
            CKind::Skip => {}
            CKind::Next => {
                if registered {
                    phase += 1;
                }
            }
            CKind::Async(b) => {
                // Unregistered child: phase-unbound.
                assign_phases(b, false, 0, out);
            }
            CKind::CAsync(b) => {
                // Registered child starts at the parent's current phase;
                // its own barriers advance it independently.
                assign_phases(b, registered, phase, out);
            }
        }
    }
    phase
}

/// `phase_of(p)[l]`: the phase at which label `l` executes, or `None`.
pub fn phase_of(p: &CProgram) -> Vec<Phase> {
    let mut out = vec![None; p.label_count()];
    assign_phases(p.body(), true, 0, &mut out);
    out
}

/// Runs the clocked analysis: base MHP then the phase refinement.
pub fn clocked_mhp(p: &CProgram) -> ClockedAnalysis {
    let n = p.label_count();
    let mut base = PairSet::empty(n);
    let empty = LabelSet::empty(n);
    let _ = analyze_stmt(p.body(), &empty, n, &mut base);

    let phases = phase_of(p);
    let mut refined = PairSet::empty(n);
    for (a, b) in base.iter_pairs() {
        match (phases[a.index()], phases[b.index()]) {
            (Some(pa), Some(pb)) if pa != pb => {} // barrier-ordered
            _ => {
                refined.insert(a, b);
            }
        }
    }
    ClockedAnalysis {
        base,
        refined,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{async_, casync, next, skip, CProgram, Node};
    use crate::semantics::explore_clocked;
    use proptest::prelude::*;

    #[test]
    fn phases_are_assigned_per_activity() {
        let p = CProgram::new(vec![
            casync(vec![skip(), next(), skip()]), // 0; 1@0; 2@0; 3@1
            skip(),                               // 4@0
            next(),                               // 5@0
            skip(),                               // 6@1
            async_(vec![skip()]),                 // 7@1; 8@None
        ]);
        let ph = phase_of(&p);
        assert_eq!(ph[1], Some(0));
        assert_eq!(ph[3], Some(1));
        assert_eq!(ph[4], Some(0));
        assert_eq!(ph[6], Some(1));
        assert_eq!(ph[7], Some(1));
        assert_eq!(ph[8], None, "plain async bodies are phase-unbound");
    }

    #[test]
    fn refinement_matches_ground_truth_on_the_barrier_example() {
        let p = CProgram::new(vec![
            casync(vec![skip(), next(), skip()]), // 1: A, 3: B
            skip(),                               // 4: X
            next(),
            skip(), // 6: Y
        ]);
        let a = clocked_mhp(&p);
        let e = explore_clocked(&p, 200_000);
        assert!(!e.truncated && e.deadlock_free);
        // Sound: every dynamic pair is in the refined set.
        for &(x, y) in &e.mhp {
            assert!(a.refined.contains(x, y), "missing ({x:?},{y:?})");
        }
        // The refinement actually removed the barrier-blind pairs.
        let (la, ly) = (Label(1), Label(6));
        assert!(a.base.contains(la, ly), "base is barrier-blind");
        assert!(!a.refined.contains(la, ly), "refined knows the barrier");
    }

    #[test]
    fn race_pair_logic_respects_the_barrier() {
        use fx10_core::race::{detect_races_with, Access, AccessKind};
        // The barrier example with both sides writing the same cell:
        // label 1 (inside the casync, phase 0) and label 6 (after the
        // `next`, phase 1) are separated by the barrier. Feeding the
        // shared race-pair logic synthetic write accesses on those
        // labels shows the refined oracle suppresses the race the
        // barrier-blind one reports.
        let p = CProgram::new(vec![
            casync(vec![skip(), next(), skip()]),
            skip(),
            next(),
            skip(),
        ]);
        let a = clocked_mhp(&p);
        let acc = [
            Access {
                label: Label(1),
                index: 0,
                kind: AccessKind::Write,
            },
            Access {
                label: Label(6),
                index: 0,
                kind: AccessKind::Write,
            },
        ];
        let blind = detect_races_with(&acc, |x, y| a.base.contains(x, y));
        assert_eq!(blind.len(), 1, "barrier-blind MHP reports the race");
        let refined = detect_races_with(&acc, |x, y| a.may_happen_in_parallel(x, y));
        assert!(
            refined.is_empty(),
            "the barrier orders the accesses: no race"
        );
    }

    fn node_strategy(depth: u32) -> impl Strategy<Value = Node> {
        let leaf = prop_oneof![3 => Just(skip()), 2 => Just(next())];
        leaf.prop_recursive(depth, 16, 3, |inner| {
            let body = proptest::collection::vec(inner, 0..3);
            prop_oneof![body.clone().prop_map(async_), body.prop_map(casync),]
        })
    }

    fn program_strategy() -> impl Strategy<Value = CProgram> {
        proptest::collection::vec(node_strategy(3), 1..6).prop_map(CProgram::new)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Soundness: dynamic MHP ⊆ refined ⊆ base, and clocked
        /// deadlock freedom, on random clocked programs.
        #[test]
        fn refined_analysis_is_sound(p in program_strategy()) {
            let e = explore_clocked(&p, 50_000);
            prop_assert!(e.deadlock_free, "clocked Theorem 1");
            let a = clocked_mhp(&p);
            prop_assert!(a.refined.is_subset(&a.base));
            for &(x, y) in &e.mhp {
                prop_assert!(
                    a.refined.contains(x, y),
                    "dynamic pair ({x:?},{y:?}) missing in {:?}",
                    p
                );
            }
        }

        /// Precision of the phase structure: without plain asyncs (every
        /// spawn clocked) and with complete exploration, the refined
        /// analysis has zero false positives — phases fully determine
        /// overlap in loop-free clocked programs.
        #[test]
        fn refinement_is_exact_on_fully_clocked_programs(
            raw in proptest::collection::vec(
                prop_oneof![
                    Just(skip()),
                    Just(next()),
                    proptest::collection::vec(
                        prop_oneof![Just(skip()), Just(next())], 0..3
                    ).prop_map(casync),
                ],
                1..6,
            )
        ) {
            let p = CProgram::new(raw);
            let e = explore_clocked(&p, 50_000);
            prop_assume!(!e.truncated);
            let a = clocked_mhp(&p);
            for (x, y) in a.refined.iter_pairs() {
                prop_assert!(
                    e.mhp.contains(&(x.min(y), x.max(y))),
                    "false positive ({x:?},{y:?}) in {:?}",
                    p
                );
            }
        }
    }
}
