//! # fx10-clocked
//!
//! The paper's *other* §8 future-work item, implemented: "a worthwhile
//! extension of our calculus would be to model the X10 notion of clocks."
//!
//! **CFX10** is a minimal clocked calculus: FX10's spawning skeleton plus
//! one program-wide clock.
//!
//! ```text
//! s ::= i | i s
//! i ::= skip^l
//!     | async^l s        — spawn, NOT registered on the clock
//!     | casync^l s       — "clocked async": spawn registered at the
//!                           parent's current phase
//!     | next^l           — barrier: wait for every registered activity
//! ```
//!
//! The main activity is registered. `next` blocks until *every* live
//! registered activity is blocked at a `next`, then all advance one
//! phase; termination deregisters. An unregistered activity's `next` is
//! a no-op (X10 would throw; a no-op keeps the calculus total and the
//! deadlock-freedom theorem intact — both choices are conservative for
//! MHP). X10 forbids clocks from crossing `finish`, so CFX10 simply
//! omits `finish`: the interesting new synchronization is the barrier.
//!
//! The crate mirrors the repository's methodology at small scale:
//!
//! - [`semantics`] — configurations, steps, exhaustive exploration with
//!   dynamic (ground-truth) MHP and a clocked deadlock-freedom check;
//! - [`analysis`] — a structural MHP analysis (the paper's async rules,
//!   with `casync` as `async` and `next` as `skip`) **plus the phase
//!   refinement**: statements of always-registered activities carry an
//!   exact phase index, and pairs with different phases are provably
//!   ordered by the barrier, so they are subtracted;
//! - property tests pitting the refined analysis against the exhaustive
//!   explorer on random clocked programs.

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod semantics;

pub use analysis::{clocked_mhp, phase_of, ClockedAnalysis, Phase};
pub use ast::{CInstr, CKind, CProgram, CStmt};
pub use semantics::{explore_clocked, ClockedExploration};
