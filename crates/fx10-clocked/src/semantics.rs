//! Small-step semantics and exhaustive exploration for CFX10.
//!
//! A configuration is a multiset of activities; each activity holds its
//! remaining statement, whether it is registered on the (single) clock,
//! and whether it is blocked at a `next`. Transitions:
//!
//! - any non-blocked activity steps its head instruction (skip consumes;
//!   async/casync spawn; `next` blocks a registered activity and is a
//!   no-op for an unregistered one);
//! - when **every** live registered activity is blocked, the clock
//!   advances: all blocked activities resume past their `next`
//!   simultaneously (one global step);
//! - a finished activity is removed (terminating deregisters).
//!
//! **Clocked deadlock freedom**: every reachable non-empty configuration
//! can step — a blocked activity only waits for other *registered*
//! activities, which either step, block (eventually releasing the
//! barrier), or terminate. The explorer asserts this on every state.

use crate::ast::{CKind, CProgram, CStmt};
use fx10_syntax::Label;
use std::collections::{BTreeSet, HashSet, VecDeque};

/// One running activity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Activity {
    /// Remaining code (`None` = just spawned bookkeeping; never stored).
    stmt: CStmt,
    /// Registered on the clock?
    registered: bool,
    /// Blocked at a `next`?
    waiting: bool,
}

/// A configuration: the live activities, kept sorted so that equal
/// multisets hash equally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Config {
    acts: Vec<Activity>,
}

impl Config {
    fn normalized(mut acts: Vec<Activity>) -> Config {
        acts.sort();
        Config { acts }
    }
}

/// Result of exploring a clocked program.
#[derive(Debug, Clone)]
pub struct ClockedExploration {
    /// Distinct configurations visited.
    pub visited: usize,
    /// True when the cap cut the search.
    pub truncated: bool,
    /// Dynamic MHP: unordered pairs of co-enabled instruction labels.
    pub mhp: BTreeSet<(Label, Label)>,
    /// Every reachable configuration could step (clocked Theorem 1).
    pub deadlock_free: bool,
}

fn front_labels(c: &Config) -> Vec<Label> {
    c.acts
        .iter()
        .filter(|a| !a.waiting)
        .map(|a| a.stmt.head().label)
        .collect()
}

/// Successor configurations.
fn successors(c: &Config) -> Vec<Config> {
    let mut out = Vec::new();

    // Individual activity steps.
    for (i, a) in c.acts.iter().enumerate() {
        if a.waiting {
            continue;
        }
        let head = a.stmt.head().clone();
        let tail = a.stmt.tail();
        let mut rest: Vec<Activity> = c
            .acts
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a.clone())
            .collect();
        match head.kind {
            CKind::Skip => {
                if let Some(t) = tail {
                    rest.push(Activity {
                        stmt: t,
                        registered: a.registered,
                        waiting: false,
                    });
                }
                out.push(Config::normalized(rest));
            }
            CKind::Next => {
                if a.registered {
                    // Block (the barrier step below releases it). A lone
                    // `next` with no continuation still blocks: the
                    // barrier then resumes it into termination.
                    let mut acts = c.acts.clone();
                    acts[i].waiting = true;
                    out.push(Config::normalized(acts));
                } else {
                    // Unregistered: no-op.
                    if let Some(t) = tail {
                        rest.push(Activity {
                            stmt: t,
                            registered: false,
                            waiting: false,
                        });
                    }
                    out.push(Config::normalized(rest));
                }
            }
            CKind::Async(body) | CKind::CAsync(body) => {
                let clocked = matches!(a.stmt.head().kind, CKind::CAsync(_)) && a.registered;
                rest.push(Activity {
                    stmt: body,
                    registered: clocked,
                    waiting: false,
                });
                if let Some(t) = tail {
                    rest.push(Activity {
                        stmt: t,
                        registered: a.registered,
                        waiting: false,
                    });
                }
                out.push(Config::normalized(rest));
            }
        }
    }

    // Barrier: all live registered activities are waiting (and at least
    // one is) → everyone advances together.
    let registered: Vec<&Activity> = c.acts.iter().filter(|a| a.registered).collect();
    if !registered.is_empty() && registered.iter().all(|a| a.waiting) {
        let mut acts = Vec::new();
        for a in &c.acts {
            if a.waiting {
                // A trailing `next` terminates the activity here.
                if let Some(t) = a.stmt.tail() {
                    acts.push(Activity {
                        stmt: t,
                        registered: a.registered,
                        waiting: false,
                    });
                }
            } else {
                acts.push(a.clone());
            }
        }
        out.push(Config::normalized(acts));
    }

    out
}

/// Exhaustive BFS computing dynamic MHP and checking deadlock freedom.
pub fn explore_clocked(p: &CProgram, max_states: usize) -> ClockedExploration {
    let init = Config::normalized(vec![Activity {
        stmt: p.body().clone(),
        registered: true,
        waiting: false,
    }]);
    let mut visited: HashSet<Config> = HashSet::new();
    let mut queue: VecDeque<Config> = VecDeque::new();
    visited.insert(init.clone());
    queue.push_back(init);

    let mut mhp = BTreeSet::new();
    let mut truncated = false;
    let mut deadlock_free = true;

    while let Some(c) = queue.pop_front() {
        // Co-enabled pairs right now.
        let fronts = front_labels(&c);
        for (i, &x) in fronts.iter().enumerate() {
            for &y in &fronts[i + 1..] {
                mhp.insert((x.min(y), x.max(y)));
            }
        }
        // Same-label self pairs: two activities parked at the same label.
        let mut sorted = fronts.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                mhp.insert((w[0], w[0]));
            }
        }

        if c.acts.is_empty() {
            continue; // fully terminated
        }
        let succ = successors(&c);
        if succ.is_empty() {
            deadlock_free = false;
            continue;
        }
        for s in succ {
            if visited.len() >= max_states {
                truncated = true;
                break;
            }
            if visited.insert(s.clone()) {
                queue.push_back(s);
            }
        }
        if truncated {
            break;
        }
    }

    ClockedExploration {
        visited: visited.len(),
        truncated,
        mhp,
        deadlock_free,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{async_, casync, next, skip, CProgram};
    use fx10_syntax::Label;

    fn mhp_of(p: &CProgram) -> ClockedExploration {
        let e = explore_clocked(p, 200_000);
        assert!(!e.truncated, "examples must fit the budget");
        assert!(e.deadlock_free, "clocked Theorem 1");
        e
    }

    #[test]
    fn barrier_orders_phases() {
        // main: casync { A; next; B; }  X; next; Y;
        // A ∥ X (phase 0 both), B ∥ Y (phase 1 both), but A ∦ Y and
        // B ∦ X — the barrier separates phases.
        let p = CProgram::new(vec![
            casync(vec![skip(), next(), skip()]), // 0: casync, 1: A, 2: next, 3: B
            skip(),                               // 4: X
            next(),                               // 5
            skip(),                               // 6: Y
        ]);
        let e = mhp_of(&p);
        let pair = |a: u32, b: u32| (Label(a.min(b)), Label(a.max(b)));
        assert!(e.mhp.contains(&pair(1, 4)), "A ∥ X: {:?}", e.mhp);
        assert!(e.mhp.contains(&pair(3, 6)), "B ∥ Y");
        assert!(!e.mhp.contains(&pair(1, 6)), "A before barrier, Y after");
        assert!(!e.mhp.contains(&pair(3, 4)), "B after barrier, X before");
    }

    #[test]
    fn unclocked_async_ignores_the_barrier() {
        // main: async { A; }  next; Y;   — A may run before or after the
        // barrier, so A ∥ Y.
        let p = CProgram::new(vec![
            async_(vec![skip()]), // 0, 1: A
            next(),               // 2
            skip(),               // 3: Y
        ]);
        let e = mhp_of(&p);
        assert!(e.mhp.contains(&(Label(1), Label(3))));
    }

    #[test]
    fn unregistered_next_is_a_noop() {
        // async { next; A; } B;  — the async is unregistered, its next
        // does not block, A ∥ B.
        let p = CProgram::new(vec![
            async_(vec![next(), skip()]), // 0, 1: next, 2: A
            skip(),                       // 3: B
        ]);
        let e = mhp_of(&p);
        assert!(e.mhp.contains(&(Label(2), Label(3))));
    }

    #[test]
    fn lone_next_terminates_cleanly() {
        let p = CProgram::new(vec![next()]);
        let e = mhp_of(&p);
        assert!(e.mhp.is_empty());
    }

    #[test]
    fn nested_casync_inherits_registration() {
        // casync { casync { A; next; B; } next; C; } next; D;
        // All three activities are registered; B, C, D are all phase 1
        // and mutually parallel; A ∦ D.
        let p = CProgram::new(vec![
            casync(vec![
                casync(vec![skip(), next(), skip()]), // 1; 2: A, 3: next, 4: B
                next(),                               // 5
                skip(),                               // 6: C
            ]), // 0
            next(), // 7
            skip(), // 8: D
        ]);
        let e = mhp_of(&p);
        let pair = |a: u32, b: u32| (Label(a.min(b)), Label(a.max(b)));
        assert!(e.mhp.contains(&pair(4, 6)), "B ∥ C");
        assert!(e.mhp.contains(&pair(4, 8)), "B ∥ D");
        assert!(e.mhp.contains(&pair(6, 8)), "C ∥ D");
        assert!(!e.mhp.contains(&pair(2, 8)), "A is phase 0, D is phase 1");
    }

    #[test]
    fn casync_from_unregistered_parent_is_plain_async() {
        // async { casync { A; } next; }  next; Y;
        // The outer async is unregistered, so the inner casync cannot
        // register either: A floats across the barrier, A ∥ Y.
        let p = CProgram::new(vec![
            async_(vec![casync(vec![skip()]), next()]), // 0; 1; 2: A; 3
            next(),                                     // 4
            skip(),                                     // 5: Y
        ]);
        let e = mhp_of(&p);
        assert!(e.mhp.contains(&(Label(2), Label(5))));
    }

    #[test]
    fn self_pairs_from_twin_activities() {
        // Two casyncs sharing a body shape never share labels, but two
        // activities CAN sit at the same label when an async body spawns
        // itself... not expressible without loops; instead check two
        // spawns of distinct asyncs yield no self pairs.
        let p = CProgram::new(vec![async_(vec![skip()]), async_(vec![skip()])]);
        let e = mhp_of(&p);
        for &(a, b) in &e.mhp {
            assert_ne!(a, b, "distinct labels only");
        }
    }
}
