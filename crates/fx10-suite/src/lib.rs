//! # fx10-suite
//!
//! Synthetic reproductions of the paper's 13 benchmarks (§6) plus random
//! program generators used by property tests and scaling benches.
//!
//! See DESIGN.md §2 for the substitution rationale: the real X10 sources
//! are not available, so each benchmark is generated to match the paper's
//! published *structural statistics* — async counts and categories
//! (Figure 6) and node-kind counts (Figure 7) — which are the only inputs
//! the analysis consumes.

#![warn(missing_docs)]
pub mod benchmarks;
pub mod random;

pub use benchmarks::{all_benchmarks, benchmark, Benchmark, BenchmarkSpec, SPECS};
pub use random::{random_condensed, random_fx10, random_fx10_loop_free, RandomConfig};
