//! Random program generators.
//!
//! Used by (a) property tests — soundness (`dynamic MHP ⊆ static M`),
//! deadlock freedom, and type/constraint equivalence must hold on
//! arbitrary programs, not just the hand-picked ones — and (b) scaling
//! benches, which need families of inputs of controlled size.
//!
//! Generators are deterministic functions of their seed (no ambient
//! randomness), so failures reproduce exactly.

use fx10_frontend::condensed::{CAst, CProgram};
use fx10_syntax::build::{assign, async_, call, finish, skip, while_, Ast};
use fx10_syntax::{Expr, Program};

/// A tiny deterministic xorshift64* PRNG — enough for structural choices,
/// with no dependency on ambient entropy.
#[derive(Debug, Clone)]
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeds the generator (zero is remapped to a fixed constant).
    pub fn new(seed: u64) -> Xorshift {
        Xorshift(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw value.
    #[allow(clippy::should_implement_trait)] // a PRNG step, not an Iterator
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Shape knobs for random programs.
#[derive(Debug, Clone, Copy)]
pub struct RandomConfig {
    /// Number of methods (≥ 1; the first is main).
    pub methods: usize,
    /// Instructions per method body at the top level.
    pub stmts_per_method: usize,
    /// Maximum nesting depth of async/finish/while bodies.
    pub max_depth: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            methods: 3,
            stmts_per_method: 4,
            max_depth: 3,
            seed: 1,
        }
    }
}

/// Generates a random FX10 program.
///
/// Calls only target later methods (acyclic call graph) and `while`
/// guards read cells the program never sets non-zero from a zero start,
/// so under the all-zero input every loop exits immediately — executions
/// terminate and the exhaustive explorer can compute exact dynamic MHP.
/// (The *analysis* still assumes every loop body runs twice, so loops
/// exercise the interesting static rules.)
pub fn random_fx10(cfg: RandomConfig) -> Program {
    random_fx10_shaped(cfg, true)
}

/// As [`random_fx10`], but with no `while` loops at all.
///
/// The analysis' only false-positive source is the loop-executes-fewer-
/// than-twice pattern (paper §8), so on loop-free programs the inferred
/// MHP should equal the exact dynamic MHP — `tests/precision.rs` checks
/// exactly that with programs from this generator.
pub fn random_fx10_loop_free(cfg: RandomConfig) -> Program {
    random_fx10_shaped(cfg, false)
}

fn random_fx10_shaped(cfg: RandomConfig, loops: bool) -> Program {
    let mut rng = Xorshift::new(cfg.seed);
    let methods = cfg.methods.max(1);

    fn gen_body(
        rng: &mut Xorshift,
        depth: usize,
        len: usize,
        me: usize,
        methods: usize,
        loops: bool,
    ) -> Vec<Ast> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let sub = |rng: &mut Xorshift| 1 + rng.below(2) as usize;
            let choice = rng.below(if depth == 0 { 3 } else { 7 });
            out.push(match choice {
                0 => skip(),
                1 => assign(rng.below(3) as usize, Expr::Const(0)),
                2 => {
                    // Calls only go forward; the last method has none.
                    if me + 1 < methods {
                        let callee = me + 1 + rng.below((methods - me - 1) as u64) as usize;
                        call(format!("f{callee}"))
                    } else {
                        assign(rng.below(3) as usize, Expr::Plus1(rng.below(3) as usize))
                    }
                }
                3 => async_({
                    let n = sub(rng);
                    gen_body(rng, depth - 1, n, me, methods, loops)
                }),
                4 => finish({
                    let n = sub(rng);
                    gen_body(rng, depth - 1, n, me, methods, loops)
                }),
                5 if loops => {
                    // Guard on cell 4+, which no assignment ever targets,
                    // so it stays 0 under the default input.
                    while_(4 + rng.below(2) as usize, {
                        let n = sub(rng);
                        gen_body(rng, depth - 1, n, me, methods, loops)
                    })
                }
                _ => async_({
                    let n = sub(rng);
                    gen_body(rng, depth - 1, n, me, methods, loops)
                }),
            });
        }
        out
    }

    let bodies: Vec<(String, Vec<Ast>)> = (0..methods)
        .map(|i| {
            let name = if i == 0 {
                "main".to_string()
            } else {
                format!("f{i}")
            };
            let body = gen_body(
                &mut rng,
                cfg.max_depth,
                cfg.stmts_per_method.max(1),
                i,
                methods,
                loops,
            );
            (name, body)
        })
        .collect();

    Program::from_ast(bodies).expect("random FX10 programs are valid by construction")
}

/// Generates a random condensed program (for scaling benches). Same
/// acyclicity guarantee; node mix covers all ten kinds.
pub fn random_condensed(cfg: RandomConfig) -> CProgram {
    let mut rng = Xorshift::new(cfg.seed ^ 0xc0de);
    let methods = cfg.methods.max(1);

    fn gen_block(
        rng: &mut Xorshift,
        depth: usize,
        len: usize,
        me: usize,
        methods: usize,
    ) -> Vec<CAst> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let sub = |rng: &mut Xorshift| 1 + rng.below(2) as usize;
            let choice = rng.below(if depth == 0 { 4 } else { 10 });
            out.push(match choice {
                0 => CAst::Skip,
                1 => CAst::End,
                2 => CAst::Return,
                3 => {
                    if me + 1 < methods {
                        let callee = me + 1 + rng.below((methods - me - 1) as u64) as usize;
                        CAst::Call(format!("f{callee}"))
                    } else {
                        CAst::Skip
                    }
                }
                4 => CAst::Async(
                    {
                        let n = sub(rng);
                        gen_block(rng, depth - 1, n, me, methods)
                    },
                    rng.chance(1, 3),
                ),
                5 => CAst::Finish({
                    let n = sub(rng);
                    gen_block(rng, depth - 1, n, me, methods)
                }),
                6 => CAst::Loop({
                    let n = sub(rng);
                    gen_block(rng, depth - 1, n, me, methods)
                }),
                7 => CAst::If(
                    {
                        let n = sub(rng);
                        gen_block(rng, depth - 1, n, me, methods)
                    },
                    {
                        let n = sub(rng);
                        gen_block(rng, depth - 1, n, me, methods)
                    },
                ),
                8 => CAst::Switch(
                    (0..1 + rng.below(3))
                        .map(|_| {
                            let n = sub(rng);
                            gen_block(rng, depth - 1, n, me, methods)
                        })
                        .collect(),
                ),
                _ => CAst::Async(
                    {
                        let n = sub(rng);
                        gen_block(rng, depth - 1, n, me, methods)
                    },
                    false,
                ),
            });
        }
        out
    }

    let bodies: Vec<(String, Vec<CAst>)> = (0..methods)
        .map(|i| {
            let name = if i == 0 {
                "main".to_string()
            } else {
                format!("f{i}")
            };
            let body = gen_block(
                &mut rng,
                cfg.max_depth,
                cfg.stmts_per_method.max(1),
                i,
                methods,
            );
            (name, body)
        })
        .collect();

    CProgram::new(bodies, 0).expect("random condensed programs are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonconstant() {
        let mut a = Xorshift::new(7);
        let mut b = Xorshift::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        assert!(Xorshift::new(0).next() != 0);
    }

    #[test]
    fn random_fx10_is_valid_and_varied() {
        let mut label_counts = std::collections::HashSet::new();
        for seed in 0..20 {
            let p = random_fx10(RandomConfig {
                seed,
                ..Default::default()
            });
            assert!(p.label_count() > 0);
            label_counts.insert(p.label_count());
        }
        assert!(label_counts.len() > 3, "programs must vary with the seed");
    }

    #[test]
    fn random_fx10_terminates_on_zero_input() {
        use fx10_semantics::{run, Scheduler};
        for seed in 0..30 {
            let p = random_fx10(RandomConfig {
                seed,
                methods: 4,
                stmts_per_method: 5,
                max_depth: 3,
            });
            let out = run(&p, &[], Scheduler::Random(seed), 100_000);
            assert!(out.completed, "seed {seed} must terminate");
        }
    }

    #[test]
    fn random_condensed_is_valid() {
        for seed in 0..20 {
            let p = random_condensed(RandomConfig {
                seed,
                methods: 5,
                stmts_per_method: 6,
                max_depth: 3,
            });
            assert!(p.label_count() > 0);
            let c = p.node_counts();
            assert_eq!(c.total(), p.label_count() + p.method_count());
        }
    }
}
