//! The 13 synthetic benchmarks (paper §6, Figures 6–9).
//!
//! The original X10 sources are unavailable, so each benchmark is
//! *generated* to match the paper's published structural statistics —
//! the node-kind counts of Figure 7 (enforced exactly, asserted in tests)
//! and the async counts/categories of Figure 6 (enforced exactly) — which
//! are precisely the inputs the constraint generator consumes. Three
//! structural styles reproduce the paper's qualitative findings:
//!
//! - [`Style::Flat`] (the 11 smaller benchmarks): every call site has
//!   `R = ∅` (calls come first in each body; leaky asyncs only trail
//!   main), so the context-insensitive analysis produces *identical*
//!   results — exactly what §7 reports for the 11 small benchmarks.
//! - [`Style::LoopHeavy`] (plasma): hub methods hold clusters of
//!   unfinished loop asyncs and call shared utility methods while those
//!   asyncs are pending; each hub call from main is finish-wrapped. CS
//!   keeps pairs local to each hub (high *self*/*same*, tiny *diff*);
//!   CI merges the utilities' call sites and cross-pollinates the hubs
//!   (the paper's 258 → 2281 blowup, mostly *diff*).
//! - [`Style::CallHeavy`] (mg): loop asyncs whose bodies call shared
//!   async-bearing workers from several different loops in different
//!   methods — high *diff* already under CS (the paper's 204), larger
//!   still under CI.

use crate::random::Xorshift;
use fx10_frontend::condensed::{AsyncStats, CAst, CProgram, NodeCounts};

/// The Figure 8 row the paper reports (for EXPERIMENTS.md comparisons).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperFig8 {
    /// time (ms) on the paper's dual-Xeon testbed.
    pub time_ms: f64,
    /// space (MB).
    pub space_mb: f64,
    /// Iterations: Slabels, level-1, level-2.
    pub iters: [usize; 3],
    /// Async-body pairs: total, self, same, diff.
    pub pairs: [usize; 4],
}

/// Structural style of the generated program (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Call sites always see `R = ∅`; CI == CS.
    Flat,
    /// Async clusters in hub methods + shared utilities called while
    /// asyncs are pending (plasma).
    LoopHeavy,
    /// Loop asyncs whose bodies call shared async-bearing workers (mg).
    CallHeavy,
}

/// One benchmark's published statistics and generation style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name as in the paper.
    pub name: &'static str,
    /// Suite (for table grouping).
    pub suite: &'static str,
    /// Figure 6 LOC.
    pub loc: usize,
    /// Figure 6 async columns.
    pub asyncs: AsyncStats,
    /// Figure 7 node counts.
    pub nodes: NodeCounts,
    /// Figure 6 constraint counts: Slabels, level-1, level-2.
    pub paper_constraints: [usize; 3],
    /// Figure 8 row.
    pub fig8: PaperFig8,
    /// Figure 9 CI row (mg and plasma only).
    pub fig9_ci: Option<PaperFig8>,
    /// Generation style.
    pub style: Style,
}

#[allow(clippy::too_many_arguments)] // mirrors the Figure 7 column order
const fn nodes(
    end: usize,
    async_: usize,
    call: usize,
    finish: usize,
    if_: usize,
    loop_: usize,
    method: usize,
    return_: usize,
    skip: usize,
    switch: usize,
) -> NodeCounts {
    NodeCounts {
        end,
        async_,
        call,
        finish,
        if_,
        loop_,
        method,
        return_,
        skip,
        switch,
    }
}

const fn asyncs(total: usize, loop_asyncs: usize, place_switch: usize) -> AsyncStats {
    AsyncStats {
        total,
        loop_asyncs,
        place_switch,
    }
}

const fn fig8(time_ms: f64, space_mb: f64, iters: [usize; 3], pairs: [usize; 4]) -> PaperFig8 {
    PaperFig8 {
        time_ms,
        space_mb,
        iters,
        pairs,
    }
}

/// All 13 benchmark specifications, in the paper's table order.
pub const SPECS: &[BenchmarkSpec] = &[
    BenchmarkSpec {
        name: "stream",
        suite: "HPC challenge",
        loc: 70,
        asyncs: asyncs(4, 3, 1),
        nodes: nodes(23, 4, 5, 4, 3, 10, 20, 21, 36, 0),
        paper_constraints: [103, 232, 103],
        fig8: fig8(153.0, 5.0, [3, 2, 2], [5, 4, 1, 0]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "fragstream",
        suite: "HPC challenge",
        loc: 73,
        asyncs: asyncs(4, 3, 1),
        nodes: nodes(23, 4, 5, 4, 3, 10, 20, 21, 36, 0),
        paper_constraints: [103, 232, 103],
        fig8: fig8(158.0, 5.0, [3, 2, 2], [5, 4, 1, 0]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "sor",
        suite: "Java Grande",
        loc: 185,
        asyncs: asyncs(7, 2, 5),
        nodes: nodes(29, 7, 21, 5, 1, 7, 24, 16, 51, 0),
        paper_constraints: [132, 298, 132],
        fig8: fig8(219.0, 6.0, [5, 2, 3], [13, 6, 3, 4]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "series",
        suite: "Java Grande",
        loc: 290,
        asyncs: asyncs(3, 1, 2),
        nodes: nodes(29, 3, 17, 2, 3, 7, 14, 7, 36, 1),
        paper_constraints: [90, 224, 90],
        fig8: fig8(230.0, 9.0, [4, 2, 4], [1, 1, 0, 0]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "sparsemm",
        suite: "Java Grande",
        loc: 366,
        asyncs: asyncs(4, 1, 3),
        nodes: nodes(28, 4, 25, 3, 0, 16, 32, 27, 66, 0),
        paper_constraints: [173, 370, 173],
        fig8: fig8(225.0, 8.0, [4, 2, 3], [3, 2, 1, 0]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "crypt",
        suite: "Java Grande",
        loc: 562,
        asyncs: asyncs(2, 2, 0),
        nodes: nodes(26, 2, 25, 2, 5, 9, 24, 21, 61, 0),
        paper_constraints: [149, 326, 149],
        fig8: fig8(218.0, 8.0, [4, 2, 2], [2, 2, 0, 0]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "moldyn",
        suite: "Java Grande",
        loc: 699,
        asyncs: asyncs(14, 6, 8),
        nodes: nodes(75, 14, 25, 14, 2, 29, 36, 22, 99, 0),
        paper_constraints: [241, 596, 241],
        fig8: fig8(420.0, 24.0, [5, 2, 3], [59, 14, 36, 9]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "linpack",
        suite: "Java Grande",
        loc: 781,
        asyncs: asyncs(8, 3, 5),
        nodes: nodes(61, 8, 42, 6, 10, 19, 25, 17, 98, 0),
        paper_constraints: [225, 547, 225],
        fig8: fig8(331.0, 13.0, [4, 3, 3], [10, 6, 1, 3]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "raytracer",
        suite: "Java Grande",
        loc: 1205,
        asyncs: asyncs(13, 2, 11),
        nodes: nodes(77, 13, 132, 9, 16, 8, 65, 50, 185, 0),
        paper_constraints: [478, 1045, 478],
        fig8: fig8(3105.0, 173.0, [5, 2, 4], [49, 13, 24, 12]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "montecarlo",
        suite: "Java Grande",
        loc: 3153,
        asyncs: asyncs(3, 1, 2),
        nodes: nodes(60, 3, 80, 3, 2, 6, 83, 39, 129, 0),
        paper_constraints: [345, 727, 345],
        fig8: fig8(1403.0, 132.0, [6, 2, 4], [4, 3, 1, 0]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "mg",
        suite: "NAS",
        loc: 1858,
        asyncs: asyncs(57, 37, 20),
        nodes: nodes(292, 57, 248, 52, 40, 68, 122, 87, 354, 0),
        paper_constraints: [1028, 2518, 1028],
        fig8: fig8(5197.0, 196.0, [6, 3, 5], [272, 51, 17, 204]),
        fig9_ci: Some(fig8(25935.0, 350.0, [6, 17, 5], [681, 52, 23, 606])),
        style: Style::CallHeavy,
    },
    BenchmarkSpec {
        name: "mapreduce",
        suite: "in-house",
        loc: 53,
        asyncs: asyncs(3, 1, 2),
        nodes: nodes(12, 3, 5, 2, 0, 3, 8, 4, 15, 0),
        paper_constraints: [40, 96, 40],
        fig8: fig8(96.0, 3.0, [3, 2, 3], [1, 1, 0, 0]),
        fig9_ci: None,
        style: Style::Flat,
    },
    BenchmarkSpec {
        name: "plasma",
        suite: "in-house",
        loc: 4623,
        asyncs: asyncs(151, 120, 31),
        nodes: nodes(604, 151, 505, 84, 93, 231, 170, 221, 1140, 1),
        paper_constraints: [2596, 6230, 2596],
        fig8: fig8(16476.0, 257.0, [6, 2, 6], [258, 134, 120, 4]),
        fig9_ci: Some(fig8(167828.0, 1429.0, [6, 14, 6], [2281, 136, 126, 2019])),
        style: Style::LoopHeavy,
    },
];

/// A generated benchmark: the spec plus the condensed program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The paper's statistics.
    pub spec: &'static BenchmarkSpec,
    /// The generated program (node counts match `spec.nodes` exactly).
    pub program: CProgram,
}

/// Looks a benchmark up by name and generates it.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    SPECS.iter().find(|s| s.name == name).map(|spec| Benchmark {
        spec,
        program: build(spec),
    })
}

/// Generates all 13 benchmarks in table order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    SPECS
        .iter()
        .map(|spec| Benchmark {
            spec,
            program: build(spec),
        })
        .collect()
}

/// One group of asyncs for the Flat pair-targeting plan.
#[derive(Debug, Clone)]
struct FlatGroup {
    /// Number of loop-async units in the group.
    loops: usize,
    /// Number of place-async units in the group.
    places: usize,
    /// Whether the group's host is called from a plain loop (grants a
    /// *self* pair to every unit in the group).
    granted: bool,
}

impl FlatGroup {
    fn size(&self) -> usize {
        self.loops + self.places
    }
}

/// The Flat generation plan: a decomposition of the paper's published
/// self/same/diff async-pair counts (Figure 8) into
///
/// - *clusters* — k sequential leaky units in one host method, giving
///   C(k,2) *same* pairs;
/// - *granted* groups — host called from a plain loop, giving one *self*
///   pair per unit (loop units self-overlap via their own loop already);
/// - *regions* — `finish { call A; call B; … }` blocks in main whose
///   groups' asyncs coexist, giving |A|·|B| (+…) *diff* pairs;
/// - isolated units — finish-wrapped (or parked at the very end of main),
///   giving no pairs beyond a loop unit's own self.
///
/// Every host is called exactly once and every call site sees `R = ∅`
/// except the within-region ones (single-site callees), so by the
/// principal-typing lemma (Lemma 12) the context-insensitive analysis
/// produces *identical* results — the paper's §7 observation for the 11
/// small benchmarks.
#[derive(Debug, Clone)]
struct FlatPlan {
    /// Hosted groups, in host-assignment order (clusters first).
    groups: Vec<FlatGroup>,
    /// Regions as group indices (disjoint).
    regions: Vec<Vec<usize>>,
    /// Isolated loop units (inline `finish { loop { async } }`).
    isolated_loops: usize,
    /// Isolated place units (inline `finish { async at }`).
    isolated_places: usize,
    /// Whether one isolated unit is parked leaky at the end of main
    /// instead of consuming a finish (used when the finish budget is
    /// exactly one short, e.g. series and mapreduce).
    free_slot: Option<FreeSlot>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FreeSlot {
    LoopUnit,
    PlaceUnit,
}

impl FlatPlan {
    fn host_count(&self) -> usize {
        self.groups.len()
    }

    /// Decomposes the Figure 8 pair targets for a Flat benchmark.
    fn plan(spec: &BenchmarkSpec) -> FlatPlan {
        let [_, target_self, target_same, target_diff] = spec.fig8.pairs;
        let (mut loops, mut places) = (spec.asyncs.loop_asyncs, spec.asyncs.place_switch);

        // 1. Same pairs: greedy C(k,2) clusters, loop units first.
        let mut groups: Vec<FlatGroup> = Vec::new();
        let mut same = target_same;
        while same > 0 {
            let avail = loops + places;
            let mut k = 2usize;
            while (k + 1) * k / 2 <= same && k < avail {
                k += 1;
            }
            assert!(k <= avail, "{}: same target infeasible", spec.name);
            same -= k * (k - 1) / 2;
            let take_loops = k.min(loops);
            loops -= take_loops;
            places -= k - take_loops;
            groups.push(FlatGroup {
                loops: take_loops,
                places: k - take_loops,
                granted: false,
            });
        }

        // 2. Self pairs: loop units are self by construction; grant the
        //    remainder via called-from-loop hosts (clusters first — a
        //    grant covers all of a cluster's place units at once).
        let mut extra = target_self
            .checked_sub(spec.asyncs.loop_asyncs)
            .unwrap_or_else(|| panic!("{}: self below loop asyncs", spec.name));
        for g in groups.iter_mut() {
            if g.places > 0 && g.places <= extra {
                g.granted = true;
                extra -= g.places;
            }
        }
        let mut single_places = places;
        let mut granted_singles = 0usize;
        while extra > 0 && single_places > 0 {
            granted_singles += 1;
            single_places -= 1;
            extra -= 1;
        }
        assert_eq!(extra, 0, "{}: self target infeasible", spec.name);
        for _ in 0..granted_singles {
            groups.push(FlatGroup {
                loops: 0,
                places: 1,
                granted: true,
            });
        }

        // 3. Diff pairs: greedy disjoint regions of hosted groups. An
        //    ungranted single host is created on demand as a partner.
        let mut diff = target_diff;
        let mut used = vec![false; groups.len()];
        let mut regions: Vec<Vec<usize>> = Vec::new();
        loop {
            // Best unused pair with product ≤ diff.
            let mut best: Option<(usize, usize, usize)> = None;
            for i in 0..groups.len() {
                if used[i] {
                    continue;
                }
                for j in (i + 1)..groups.len() {
                    if used[j] {
                        continue;
                    }
                    let prod = groups[i].size() * groups[j].size();
                    if prod <= diff && best.is_none_or(|(_, _, p)| prod > p) {
                        best = Some((i, j, prod));
                    }
                }
                // Pair with a fresh ungranted single if one is spare.
                if single_places > 0 {
                    let prod = groups[i].size();
                    if prod <= diff && best.is_none_or(|(_, _, p)| prod > p) {
                        best = Some((i, usize::MAX, prod));
                    }
                }
            }
            match best {
                Some((i, j, prod)) if diff > 0 => {
                    used[i] = true;
                    let j = if j == usize::MAX {
                        single_places -= 1;
                        groups.push(FlatGroup {
                            loops: 0,
                            places: 1,
                            granted: false,
                        });
                        used.push(true);
                        groups.len() - 1
                    } else {
                        used[j] = true;
                        j
                    };
                    regions.push(vec![i, j]);
                    diff -= prod;
                }
                _ => break,
            }
        }
        // Any residual diff is accepted (recorded in EXPERIMENTS.md);
        // the shape tests allow a small gap.

        // 4. What's left is isolated.
        FlatPlan {
            groups,
            regions,
            isolated_loops: loops,
            isolated_places: single_places,
            free_slot: None, // decided against the finish budget in build()
        }
    }

    /// Finish nodes the plan needs: one per region, one per hosted group
    /// not in a region (its solo call region), one per isolated unit.
    fn finishes_needed(&self) -> usize {
        let in_region: std::collections::HashSet<usize> =
            self.regions.iter().flatten().copied().collect();
        self.regions.len()
            + (self.groups.len() - in_region.len())
            + self.isolated_loops
            + self.isolated_places
    }
}

/// Remaining node budget during assembly.
#[derive(Debug, Clone, Copy)]
struct Budget {
    end: usize,
    async_loop: usize,
    async_place: usize,
    call: usize,
    finish: usize,
    if_: usize,
    loop_: usize,
    return_: usize,
    skip: usize,
    switch: usize,
}

impl Budget {
    fn of(spec: &BenchmarkSpec) -> Budget {
        assert_eq!(
            spec.asyncs.total,
            spec.asyncs.loop_asyncs + spec.asyncs.place_switch,
            "{}: async categories must partition the total",
            spec.name
        );
        assert_eq!(spec.nodes.async_, spec.asyncs.total);
        Budget {
            end: spec.nodes.end,
            async_loop: spec.asyncs.loop_asyncs,
            async_place: spec.asyncs.place_switch,
            call: spec.nodes.call,
            finish: spec.nodes.finish,
            if_: spec.nodes.if_,
            loop_: spec.nodes.loop_,
            return_: spec.nodes.return_,
            skip: spec.nodes.skip,
            switch: spec.nodes.switch,
        }
    }

    fn take(n: &mut usize) -> bool {
        if *n > 0 {
            *n -= 1;
            true
        } else {
            false
        }
    }
}

/// Deterministically builds the program for a spec. Node counts are
/// asserted to match Figure 7 exactly.
pub fn build(spec: &BenchmarkSpec) -> CProgram {
    let u = spec.nodes.method;
    assert!(u >= 2, "{}: need at least main + one worker", spec.name);
    let mut b = Budget::of(spec);
    let mut rng = Xorshift::new(spec.name.bytes().fold(0xfeed_f00d_u64, |h, c| {
        h.wrapping_mul(131).wrapping_add(c as u64)
    }));
    let mut bodies: Vec<Vec<CAst>> = vec![Vec::new(); u];
    let names: Vec<String> = (0..u)
        .map(|i| {
            if i == 0 {
                "main".into()
            } else {
                format!("f{i}")
            }
        })
        .collect();

    // ---- 1. Call graph: every method reachable from main. -----------
    // Call c targets callee 1 + (c mod (u-1)); the caller is a method
    // with a strictly smaller "rank" so the graph is acyclic. The first
    // round of calls comes straight from main (or a chain), guaranteeing
    // reachability whenever call-budget ≥ u-1.
    //
    // Calls are emitted *first* in each body (the Flat invariant: call
    // sites see R = ∅). Styles add later, R ≠ ∅ call sites on top.
    // Styles place some calls themselves (inside async bodies / hubs);
    // reserve those out of the Figure 7 call budget.
    // Flat benchmarks follow a pair-targeting plan (see FlatPlan).
    let mut flat_plan = match spec.style {
        Style::Flat => {
            let mut plan = FlatPlan::plan(spec);
            // Use the end-of-main free slot when the finish budget is one
            // short of the isolation needs.
            if plan.finishes_needed() > spec.nodes.finish {
                if plan.isolated_places > 0 {
                    plan.isolated_places -= 1;
                    plan.free_slot = Some(FreeSlot::PlaceUnit);
                } else if plan.isolated_loops > 0 {
                    plan.isolated_loops -= 1;
                    plan.free_slot = Some(FreeSlot::LoopUnit);
                }
                assert!(
                    plan.finishes_needed() <= spec.nodes.finish,
                    "{}: finish budget infeasible",
                    spec.name
                );
            }
            Some(plan)
        }
        _ => None,
    };
    let reserved_calls = match spec.style {
        Style::Flat => flat_plan.as_ref().map_or(0, |p| p.host_count()),
        Style::LoopHeavy => spec.asyncs.loop_asyncs.div_ceil(3),
        // One call per region plus the chain links.
        Style::CallHeavy => spec.asyncs.loop_asyncs.div_ceil(2) + spec.asyncs.place_switch,
    };
    let upfront_calls = b.call.saturating_sub(reserved_calls);
    // CallHeavy workers (the trailing methods) carry leaky asyncs and
    // must be reached only through the style's region calls — an upfront
    // call would spill their async labels into a caller's continuation
    // and blow up the CS diff count far past the paper's.
    let n_workers_reserved = match spec.style {
        Style::CallHeavy => spec.asyncs.place_switch.min(u.saturating_sub(2)).max(1),
        Style::Flat => flat_plan.as_ref().map_or(0, |p| p.host_count()),
        Style::LoopHeavy => 0,
    };
    let upfront_max_callee = u - n_workers_reserved;
    let mut call_edges: Vec<(usize, usize)> = Vec::new(); // (caller, callee)
    {
        let mut c = 0usize;
        'outer: loop {
            for callee in 1..upfront_max_callee {
                if c >= upfront_calls {
                    break 'outer;
                }
                let caller = if c < u - 1 {
                    // First round: a shallow tree below main.
                    if callee <= 4 {
                        0
                    } else {
                        1 + (callee - 2) % 4
                    }
                } else {
                    // Later rounds: spread among methods before the callee.
                    rng.below(callee as u64) as usize
                };
                call_edges.push((caller.min(callee - 1), callee));
                c += 1;
            }
            if u == 1 {
                break;
            }
        }
        b.call -= c;
    }

    // Reachability check (used to place asyncs only in live methods).
    let mut reachable = vec![false; u];
    reachable[0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for &(caller, callee) in &call_edges {
            if reachable[caller] && !reachable[callee] {
                reachable[callee] = true;
                changed = true;
            }
        }
    }

    for &(caller, callee) in &call_edges {
        bodies[caller].push(CAst::Call(names[callee].clone()));
    }

    // ---- 2. Async units per style. -----------------------------------
    // A loop unit is `loop { async { skip } }`; a place unit is
    // `async at { skip }`. Bodies may instead call a worker (CallHeavy).
    let live: Vec<usize> = (1..u).filter(|&i| reachable[i]).collect();
    let live_or_main = |k: usize, live: &[usize]| -> usize {
        if live.is_empty() {
            0
        } else {
            live[k % live.len()]
        }
    };

    let mut free_unit: Option<CAst> = None;
    match spec.style {
        Style::Flat => {
            // Realize the pair-targeting plan (see FlatPlan docs).
            let plan = flat_plan.take().expect("flat style has a plan");
            let host_base = u - plan.host_count();

            let loop_unit = |b: &mut Budget| -> CAst {
                assert!(Budget::take(&mut b.async_loop), "loop-async budget");
                assert!(Budget::take(&mut b.loop_), "loop budget");
                let body = if Budget::take(&mut b.skip) {
                    vec![CAst::Skip]
                } else {
                    vec![]
                };
                CAst::Loop(vec![CAst::Async(body, false)])
            };
            let place_unit = |b: &mut Budget| -> CAst {
                assert!(Budget::take(&mut b.async_place), "place-async budget");
                let body = if Budget::take(&mut b.skip) {
                    vec![CAst::Skip]
                } else {
                    vec![]
                };
                CAst::Async(body, true)
            };

            // Host bodies: the group's units, sequential and leaky.
            for (gi, g) in plan.groups.iter().enumerate() {
                let h = host_base + gi;
                for _ in 0..g.loops {
                    let unit = loop_unit(&mut b);
                    bodies[h].push(unit);
                }
                for _ in 0..g.places {
                    let unit = place_unit(&mut b);
                    bodies[h].push(unit);
                }
            }

            // A region entry: the (single) call to the group's host,
            // loop-wrapped when the group is granted self pairs.
            let entry = |gi: usize, b: &mut Budget| -> CAst {
                assert!(Budget::take(&mut b.call), "host-call budget");
                let call = CAst::Call(names[host_base + gi].clone());
                if plan.groups[gi].granted {
                    assert!(Budget::take(&mut b.loop_), "grant-loop budget");
                    CAst::Loop(vec![call])
                } else {
                    call
                }
            };

            // Diff regions, then solo regions for the remaining hosts.
            let mut in_region = vec![false; plan.groups.len()];
            for region in &plan.regions {
                let entries: Vec<CAst> = region
                    .iter()
                    .map(|&gi| {
                        in_region[gi] = true;
                        entry(gi, &mut b)
                    })
                    .collect();
                assert!(Budget::take(&mut b.finish), "region finish budget");
                bodies[0].push(CAst::Finish(entries));
            }
            for (gi, hosted) in in_region.iter().enumerate() {
                if !hosted {
                    let e = entry(gi, &mut b);
                    assert!(Budget::take(&mut b.finish), "solo finish budget");
                    bodies[0].push(CAst::Finish(vec![e]));
                }
            }

            // Isolated units.
            for _ in 0..plan.isolated_loops {
                let unit = loop_unit(&mut b);
                assert!(Budget::take(&mut b.finish), "isolation finish budget");
                bodies[0].push(CAst::Finish(vec![unit]));
            }
            for _ in 0..plan.isolated_places {
                let unit = place_unit(&mut b);
                assert!(Budget::take(&mut b.finish), "isolation finish budget");
                bodies[0].push(CAst::Finish(vec![unit]));
            }
            // The free-slot unit is parked at the very end of main after
            // the leftover calls (step 3) so every call site keeps R = ∅.
            free_unit = plan.free_slot.map(|slot| match slot {
                FreeSlot::LoopUnit => loop_unit(&mut b),
                FreeSlot::PlaceUnit => place_unit(&mut b),
            });
        }
        Style::LoopHeavy => {
            // Hubs hold *finish-wrapped sub-groups* of ~3 unfinished loop
            // asyncs each; a shared utility is called in the middle of
            // each sub-group, while the first units are pending. Under CS
            // pairs stay local to a sub-group (self per unit, C(3,2) same
            // per group, ~no diff). Under CI the utility's call sites
            // merge: every group's pending labels reach every other
            // group's continuation — the paper's mostly-diff blowup.
            let n_hubs = live.len().clamp(1, 8).min(live.len());
            // The shared utility is the *last* method: callers are always
            // drawn below their callee, so it never calls anyone — its
            // Slabels stay free of other methods' async labels, keeping
            // the CS diff count small.
            let util = live.last().copied().unwrap_or(0);
            let mut group: Vec<CAst> = Vec::new();
            let mut k = 0usize;
            while b.async_loop > 0 {
                b.async_loop -= 1;
                assert!(Budget::take(&mut b.loop_));
                let skip_body = if Budget::take(&mut b.skip) {
                    vec![CAst::Skip]
                } else {
                    vec![]
                };
                group.push(CAst::Loop(vec![CAst::Async(skip_body, false)]));
                // Mid-group utility call: pending asyncs before it, a
                // continuation after it.
                if group.len() == 2 {
                    let hub = live[k % n_hubs];
                    if hub != util && Budget::take(&mut b.call) {
                        group.push(CAst::Call(names[util].clone()));
                    }
                }
                if group.len() >= 4 {
                    let hub = live[k % n_hubs];
                    if Budget::take(&mut b.finish) {
                        bodies[hub].push(CAst::Finish(std::mem::take(&mut group)));
                    } else {
                        bodies[hub].append(&mut group);
                    }
                    k += 1;
                }
            }
            if !group.is_empty() {
                let hub = live[k % n_hubs];
                if Budget::take(&mut b.finish) {
                    bodies[hub].push(CAst::Finish(std::mem::take(&mut group)));
                } else {
                    bodies[hub].append(&mut group);
                }
            }
            // Place asyncs: individually finish-wrapped, spread over the
            // non-hub methods — no extra pairs.
            let mut k = n_hubs;
            while b.async_place > 0 {
                b.async_place -= 1;
                let skip_body = if Budget::take(&mut b.skip) {
                    vec![CAst::Skip]
                } else {
                    vec![]
                };
                let unit = CAst::Async(skip_body, true);
                // Never into the utility leaf (its Slabels must stay
                // async-free).
                let spots: Vec<usize> = live.iter().copied().filter(|&m| m != util).collect();
                let m = live_or_main(k, &spots);
                if Budget::take(&mut b.finish) {
                    bodies[m].push(CAst::Finish(vec![unit]));
                } else {
                    bodies[m].push(unit);
                }
                k += 1;
            }
        }
        Style::CallHeavy => {
            // Finish-wrapped *regions* in many different methods:
            //   finish { loop{async{skip}}  head()  loop{async{skip}} }
            // where `head` starts a *chain* of worker methods, each with
            // one leaky place async and a call to the next link. Chain
            // asyncs leak upward and mutually overlap across methods, so
            // under CS each region contributes self pairs, one same pair,
            // and many *diff* pairs — mg's diff-dominated profile
            // (Figure 8: 272 = 51 self / 17 same / 204 diff). Under CI
            // the chain heads' call sites merge and region i's asyncs
            // reach region j's continuation: a further, mostly-diff
            // blowup (Figure 9).
            let n_chain = spec.asyncs.place_switch.min(u.saturating_sub(2)).max(1);
            let chain_start = u - n_chain;
            let n_heads = n_chain.min(3);
            let mut k = 0usize;
            #[allow(clippy::needless_range_loop)] // m names methods, not slots
            for m in chain_start..u {
                if b.async_place == 0 {
                    break;
                }
                b.async_place -= 1;
                let skip_body = if Budget::take(&mut b.skip) {
                    vec![CAst::Skip]
                } else {
                    vec![]
                };
                bodies[m].push(CAst::Async(skip_body, true));
                let next = m + n_heads;
                if next < u && Budget::take(&mut b.call) {
                    bodies[m].push(CAst::Call(names[next].clone()));
                }
            }
            // Leftover place asyncs (more asyncs than spare methods) go
            // to the chain heads.
            while b.async_place > 0 {
                b.async_place -= 1;
                let skip_body = if Budget::take(&mut b.skip) {
                    vec![CAst::Skip]
                } else {
                    vec![]
                };
                bodies[chain_start + k % n_heads].push(CAst::Async(skip_body, true));
                k += 1;
            }
            let workers: Vec<usize> = (chain_start..chain_start + n_heads).collect();
            let hosts: Vec<usize> = live
                .iter()
                .filter(|&&m| m < chain_start)
                .copied()
                .chain(std::iter::once(0))
                .collect();
            let mut region: Vec<CAst> = Vec::new();
            let mut k = 0usize;
            while b.async_loop > 0 {
                b.async_loop -= 1;
                assert!(Budget::take(&mut b.loop_));
                let skip_body = if Budget::take(&mut b.skip) {
                    vec![CAst::Skip]
                } else {
                    vec![]
                };
                region.push(CAst::Loop(vec![CAst::Async(skip_body, false)]));
                if region.len() == 1 {
                    // Call the worker with asyncs pending and a
                    // continuation (the second unit) to follow.
                    let w = workers[k % workers.len()];
                    let host = hosts[k % hosts.len()];
                    if host != w && Budget::take(&mut b.call) {
                        region.push(CAst::Call(names[w].clone()));
                    }
                }
                if region.len() >= 3 {
                    let host = hosts[k % hosts.len()];
                    if Budget::take(&mut b.finish) {
                        bodies[host].push(CAst::Finish(std::mem::take(&mut region)));
                    } else {
                        bodies[host].append(&mut region);
                    }
                    k += 1;
                }
            }
            if !region.is_empty() {
                let host = hosts[k % hosts.len()];
                if Budget::take(&mut b.finish) {
                    bodies[host].push(CAst::Finish(std::mem::take(&mut region)));
                } else {
                    bodies[host].append(&mut region);
                }
            }
        }
    }

    // ---- 3. Remaining calls (styles may have consumed some). --------
    while Budget::take(&mut b.call) {
        let callee = 1 + rng.below((upfront_max_callee - 1) as u64) as usize;
        let caller = rng.below(callee as u64) as usize;
        // Appending keeps acyclicity; R may be non-empty here for the
        // non-Flat styles only (Flat consumed its call budget up front).
        bodies[caller].push(CAst::Call(names[callee].clone()));
    }

    // The Flat free-slot unit goes after every call in main: leaky, but
    // at a point where nothing follows except call-free filler.
    if let Some(unit) = free_unit.take() {
        bodies[0].push(unit);
    }

    // ---- 4. Structural filler: ifs, switches, plain loops, finishes. -
    // Bodies draw from the skip budget when available so the shapes are
    // not degenerate; every branch construct consumes exactly its node.
    let mut spread = 0usize;
    let filler_skip = |b: &mut Budget| -> Vec<CAst> {
        if Budget::take(&mut b.skip) {
            vec![CAst::Skip]
        } else {
            vec![]
        }
    };
    while b.if_ > 0 {
        b.if_ -= 1;
        let then_ = filler_skip(&mut b);
        let else_ = filler_skip(&mut b);
        let m = spread % u;
        spread += 1;
        bodies[m].push(CAst::If(then_, else_));
    }
    while b.switch > 0 {
        b.switch -= 1;
        let cases = vec![filler_skip(&mut b), filler_skip(&mut b)];
        let m = spread % u;
        spread += 1;
        bodies[m].push(CAst::Switch(cases));
    }
    while b.loop_ > 0 {
        b.loop_ -= 1;
        let body = filler_skip(&mut b);
        let m = spread % u;
        spread += 1;
        bodies[m].push(CAst::Loop(body));
    }
    while b.finish > 0 {
        b.finish -= 1;
        let body = filler_skip(&mut b);
        let m = spread % u;
        spread += 1;
        bodies[m].push(CAst::Finish(body));
    }

    // ---- 5. Flat filler: skips, ends, returns. ------------------------
    let mut m = 0usize;
    while Budget::take(&mut b.skip) {
        bodies[m % u].push(CAst::Skip);
        m += 1;
    }
    while Budget::take(&mut b.end) {
        bodies[m % u].push(CAst::End);
        m += 1;
    }
    // Returns go last in as many distinct methods as possible.
    let mut m = u;
    while Budget::take(&mut b.return_) {
        m = if m == 0 { u - 1 } else { m - 1 };
        bodies[m].push(CAst::Return);
    }

    let program = CProgram::new(
        names.into_iter().zip(bodies).collect(),
        spec.loc, // report the paper's LOC for the Figure 6 table
    )
    .expect("generated benchmark must assemble");

    // The contract: Figure 7 exactly.
    debug_assert_eq!(
        program.node_counts(),
        spec.nodes,
        "{}: generated node counts diverge",
        spec.name
    );
    debug_assert_eq!(program.async_stats(), spec.asyncs, "{}", spec.name);
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx10_core::analysis::SolverKind;
    use fx10_core::Mode;
    use fx10_frontend::gen::{analyze_condensed, async_pairs_condensed};

    #[test]
    fn all_13_build_with_exact_figure7_counts() {
        for bm in all_benchmarks() {
            assert_eq!(
                bm.program.node_counts(),
                bm.spec.nodes,
                "{}: node counts",
                bm.spec.name
            );
            assert_eq!(
                bm.program.async_stats(),
                bm.spec.asyncs,
                "{}: async stats",
                bm.spec.name
            );
            assert_eq!(bm.program.node_counts().total(), bm.spec.nodes.total());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = benchmark("moldyn").unwrap();
        let b = benchmark("moldyn").unwrap();
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn small_benchmarks_have_identical_ci_results() {
        // §7: "For the 11 smallest benchmarks ... we got the exact same
        // results."
        for bm in all_benchmarks() {
            if bm.spec.style != Style::Flat {
                continue;
            }
            let cs = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Naive);
            let ci = analyze_condensed(
                &bm.program,
                Mode::ContextInsensitive { keep_scross: true },
                SolverKind::Naive,
            );
            assert_eq!(
                cs.mhp(),
                ci.mhp(),
                "{}: CI must equal CS on flat benchmarks",
                bm.spec.name
            );
        }
    }

    #[test]
    fn mg_and_plasma_show_ci_blowup() {
        // Figure 9: only mg and plasma produce additional pairs under CI,
        // mostly in the diff category.
        for name in ["mg", "plasma"] {
            let bm = benchmark(name).unwrap();
            let cs = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Naive);
            let ci = analyze_condensed(
                &bm.program,
                Mode::ContextInsensitive { keep_scross: true },
                SolverKind::Naive,
            );
            let rep_cs = async_pairs_condensed(&cs);
            let rep_ci = async_pairs_condensed(&ci);
            assert!(
                rep_ci.total() > rep_cs.total(),
                "{name}: CI {} must exceed CS {}",
                rep_ci.total(),
                rep_cs.total()
            );
            assert!(
                rep_ci.diff_method > rep_cs.diff_method,
                "{name}: the blowup is mostly diff pairs"
            );
        }
    }

    #[test]
    fn plasma_is_self_and_same_dominated_under_cs() {
        let bm = benchmark("plasma").unwrap();
        let cs = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Naive);
        let rep = async_pairs_condensed(&cs);
        assert!(rep.self_pairs >= 100, "plasma self: {}", rep.self_pairs);
        assert!(
            rep.diff_method < rep.self_pairs / 4,
            "plasma diff must stay small: {rep:?}"
        );
    }

    #[test]
    fn mg_is_diff_dominated_under_cs() {
        let bm = benchmark("mg").unwrap();
        let cs = analyze_condensed(&bm.program, Mode::ContextSensitive, SolverKind::Naive);
        let rep = async_pairs_condensed(&cs);
        assert!(
            rep.diff_method > rep.same_method,
            "mg is diff-dominated: {rep:?}"
        );
        assert!(rep.diff_method >= 20, "mg diff: {}", rep.diff_method);
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(benchmark("nope").is_none());
    }
}
