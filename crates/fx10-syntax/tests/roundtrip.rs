//! Property tests: pretty-printing is a right inverse of parsing, and
//! label assignment is stable across the round trip.

use fx10_syntax::build::{assign, async_, call, finish, skip, while_, Ast};
use fx10_syntax::pretty;
use fx10_syntax::{Expr, Program};
use proptest::prelude::*;

/// A strategy for random unlabeled instruction trees.
fn ast_strategy(depth: u32) -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        Just(skip()),
        (
            0usize..4,
            prop_oneof![
                (0i64..10).prop_map(Expr::Const),
                (0usize..4).prop_map(Expr::Plus1),
            ]
        )
            .prop_map(|(d, e)| assign(d, e)),
        Just(call("aux")),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        let body = proptest::collection::vec(inner, 0..3);
        prop_oneof![
            body.clone().prop_map(async_),
            body.clone().prop_map(finish),
            (0usize..4, body).prop_map(|(d, b)| while_(d, b)),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(ast_strategy(3), 1..5),
        proptest::collection::vec(ast_strategy(2), 1..4),
    )
        .prop_map(|(main_body, aux_body)| {
            Program::from_ast(vec![
                ("main".to_string(), main_body),
                ("aux".to_string(), aux_body),
            ])
            .expect("generated programs are valid")
        })
}

proptest! {
    #[test]
    fn pretty_then_parse_is_identity(p in program_strategy()) {
        let printed = pretty::program(&p);
        let reparsed = Program::parse(&printed)
            .unwrap_or_else(|e| panic!("pretty output must parse: {e}\n{printed}"));
        prop_assert_eq!(&p, &reparsed);
    }

    #[test]
    fn labels_are_dense_and_unique(p in program_strategy()) {
        let mut labels = Vec::new();
        p.for_each_instr(|_, i| labels.push(i.label.index()));
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), labels.len(), "labels must be unique");
        prop_assert_eq!(
            sorted,
            (0..p.label_count()).collect::<Vec<_>>(),
            "labels must be dense"
        );
        // Instruction count equals label count.
        let total: usize = p.methods().iter().map(|m| m.body().size()).sum();
        prop_assert_eq!(total, p.label_count());
    }

    #[test]
    fn suffixes_partition_statements(p in program_strategy()) {
        // Every statement's tail chain covers exactly its instructions.
        for m in p.methods() {
            let body = m.body();
            let mut covered = 0usize;
            let mut cur = Some(body.clone());
            while let Some(s) = cur {
                covered += 1;
                cur = s.tail();
            }
            prop_assert_eq!(covered, body.len());
        }
    }
}
