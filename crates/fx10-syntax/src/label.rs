//! Statement labels.
//!
//! The paper attaches a label `l` to every instruction; labels "have no
//! impact on computation but are convenient for our may-happen-in-parallel
//! analysis" (§3.2). We assign labels densely in program order so that label
//! sets can be dense bitsets and label-indexed tables can be plain `Vec`s.

/// A statement label: a dense index in `0..Program::label_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl Label {
    /// The label's dense index, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Maps dense labels back to human-readable names ("S1", "S2", ...).
///
/// Names come from the surface syntax (`S3: skip;` or the bare-identifier
/// shorthand `S3;`); unnamed instructions render as `L<index>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelTable {
    names: Vec<Option<String>>,
}

impl LabelTable {
    pub(crate) fn with_len(n: usize) -> Self {
        LabelTable {
            names: vec![None; n],
        }
    }

    pub(crate) fn set(&mut self, l: Label, name: String) {
        self.names[l.index()] = Some(name);
    }

    /// Number of labels in the table.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The user-supplied name of `l`, if any.
    pub fn name(&self, l: Label) -> Option<&str> {
        self.names.get(l.index()).and_then(|n| n.as_deref())
    }

    /// A printable name: the user name if present, otherwise `L<index>`.
    pub fn display(&self, l: Label) -> String {
        match self.name(l) {
            Some(n) => n.to_string(),
            None => format!("{l}"),
        }
    }

    /// Find a label by its user-supplied name.
    pub fn lookup(&self, name: &str) -> Option<Label> {
        self.names
            .iter()
            .position(|n| n.as_deref() == Some(name))
            .map(|i| Label(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefers_user_name() {
        let mut t = LabelTable::with_len(2);
        t.set(Label(1), "S7".to_string());
        assert_eq!(t.display(Label(0)), "L0");
        assert_eq!(t.display(Label(1)), "S7");
        assert_eq!(t.lookup("S7"), Some(Label(1)));
        assert_eq!(t.lookup("S8"), None);
    }
}
