//! Statement labels.
//!
//! The paper attaches a label `l` to every instruction; labels "have no
//! impact on computation but are convenient for our may-happen-in-parallel
//! analysis" (§3.2). We assign labels densely in program order so that label
//! sets can be dense bitsets and label-indexed tables can be plain `Vec`s.

/// A statement label: a dense index in `0..Program::label_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl Label {
    /// The label's dense index, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Maps dense labels back to human-readable names ("S1", "S2", ...) and
/// 1-based source lines.
///
/// Names come from the surface syntax (`S3: skip;` or the bare-identifier
/// shorthand `S3;`); unnamed instructions render as `L<index>`. Lines come
/// from the parser; programs built programmatically (no source text) carry
/// line 0, which diagnostics treat as "unknown".
#[derive(Debug, Clone, Default)]
pub struct LabelTable {
    names: Vec<Option<String>>,
    lines: Vec<u32>,
}

/// Two tables are equal when their *names* agree. Source lines are
/// formatting metadata: a program must compare equal to its own
/// pretty-printed-and-reparsed round trip even though the layout moved.
impl PartialEq for LabelTable {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Eq for LabelTable {}

impl LabelTable {
    pub(crate) fn with_len(n: usize) -> Self {
        LabelTable {
            names: vec![None; n],
            lines: vec![0; n],
        }
    }

    pub(crate) fn set(&mut self, l: Label, name: String) {
        self.names[l.index()] = Some(name);
    }

    pub(crate) fn set_line(&mut self, l: Label, line: u32) {
        self.lines[l.index()] = line;
    }

    /// Number of labels in the table.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The user-supplied name of `l`, if any.
    pub fn name(&self, l: Label) -> Option<&str> {
        self.names.get(l.index()).and_then(|n| n.as_deref())
    }

    /// A printable name: the user name if present, otherwise `L<index>`.
    pub fn display(&self, l: Label) -> String {
        match self.name(l) {
            Some(n) => n.to_string(),
            None => format!("{l}"),
        }
    }

    /// The 1-based source line of `l`'s instruction, or 0 when the
    /// program was not built from source text (builder/generator ASTs).
    pub fn line(&self, l: Label) -> u32 {
        self.lines.get(l.index()).copied().unwrap_or(0)
    }

    /// Find a label by its user-supplied name.
    pub fn lookup(&self, name: &str) -> Option<Label> {
        self.names
            .iter()
            .position(|n| n.as_deref() == Some(name))
            .map(|i| Label(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefers_user_name() {
        let mut t = LabelTable::with_len(2);
        t.set(Label(1), "S7".to_string());
        assert_eq!(t.display(Label(0)), "L0");
        assert_eq!(t.display(Label(1)), "S7");
        assert_eq!(t.lookup("S7"), Some(Label(1)));
        assert_eq!(t.lookup("S8"), None);
    }
}
