//! Concrete syntax for FX10.
//!
//! The grammar mirrors the paper's abstract syntax plus the labeling and
//! naming conventions its examples use:
//!
//! ```text
//! program ::= decl? def*
//! decl    ::= "array" "[" num "]" ";"        // intended bounds of `a`
//! def     ::= "def" ident "(" ")" block
//! block   ::= "{" stmt* "}"
//! stmt    ::= [ident ":"] instr
//! instr   ::= "skip" ";"
//!           | ident ";"                        // named skip shorthand: `S1;`
//!           | "a" "[" num "]" "=" expr ";"
//!           | "while" "(" "a" "[" num "]" "!=" "0" ")" block
//!           | "async" block
//!           | "finish" block
//!           | ident "(" ")" ";"
//! expr    ::= num | "a" "[" num "]" "+" "1"
//! ```
//!
//! Line comments start with `//`. An empty block parses as a single `skip`
//! (the grammar requires non-empty statements).

use crate::ast::{Expr, Program};
use crate::build::{assign, async_, call, finish, skip, while_, Ast};
use crate::ValidateError;

/// A parse or validation failure, with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the error was detected (0 when the error
    /// is program-level, e.g. a call to an unknown method).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ValidateError> for ParseError {
    fn from(e: ValidateError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBrack,
    RBrack,
    Semi,
    Colon,
    Eq,
    Neq,
    Plus,
    Minus,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Num(n) => write!(f, "`{n}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrack => write!(f, "`[`"),
            Tok::RBrack => write!(f, "`]`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Neq => write!(f, "`!=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(ParseError {
                        line,
                        message: "unexpected `/` (comments are `//`)".into(),
                    });
                }
            }
            '{' => {
                chars.next();
                out.push((Tok::LBrace, line));
            }
            '}' => {
                chars.next();
                out.push((Tok::RBrace, line));
            }
            '(' => {
                chars.next();
                out.push((Tok::LParen, line));
            }
            ')' => {
                chars.next();
                out.push((Tok::RParen, line));
            }
            '[' => {
                chars.next();
                out.push((Tok::LBrack, line));
            }
            ']' => {
                chars.next();
                out.push((Tok::RBrack, line));
            }
            ';' => {
                chars.next();
                out.push((Tok::Semi, line));
            }
            ':' => {
                chars.next();
                out.push((Tok::Colon, line));
            }
            '+' => {
                chars.next();
                out.push((Tok::Plus, line));
            }
            '-' => {
                chars.next();
                out.push((Tok::Minus, line));
            }
            '=' => {
                chars.next();
                out.push((Tok::Eq, line));
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Tok::Neq, line));
                } else {
                    return Err(ParseError {
                        line,
                        message: "expected `!=`".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut n = 0i64;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n * 10 + v as i64;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Num(n), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), line));
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

/// Parsed method bodies plus the optional `array [n];` declaration.
type ParsedProgram = (Vec<(String, Vec<Ast>)>, Option<usize>);

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|&(_, l)| l)
            .unwrap_or(1)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected {want}, found {t}"),
            }),
            None => Err(self.err(format!("expected {want}, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected identifier, found {t}"),
            }),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn expect_num(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            Some(t) => Err(ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected number, found {t}"),
            }),
            None => Err(self.err("expected number, found end of input")),
        }
    }

    /// `array [ num ] ;` — the optional bounds declaration. The caller has
    /// checked that the next tokens are `array` `[`.
    fn array_decl(&mut self) -> Result<usize, ParseError> {
        self.next(); // `array`
        let n = self.array_index()?;
        self.expect(Tok::Semi)?;
        Ok(n)
    }

    fn program(&mut self) -> Result<ParsedProgram, ParseError> {
        let mut methods = Vec::new();
        let mut declared = None;
        while self.peek().is_some() {
            if let (Some(Tok::Ident(kw)), Some((Tok::LBrack, _))) =
                (self.peek(), self.toks.get(self.pos + 1))
            {
                if kw == "array" {
                    if declared.is_some() {
                        return Err(self.err("duplicate `array[N];` declaration"));
                    }
                    declared = Some(self.array_decl()?);
                    continue;
                }
            }
            match self.next() {
                Some(Tok::Ident(kw)) if kw == "def" => {}
                _ => {
                    return Err(ParseError {
                        line: self.toks[self.pos.saturating_sub(1)].1,
                        message: "expected `def`".into(),
                    })
                }
            }
            let name = self.expect_ident()?;
            self.expect(Tok::LParen)?;
            self.expect(Tok::RParen)?;
            let body = self.block()?;
            methods.push((name, body));
        }
        Ok((methods, declared))
    }

    fn block(&mut self) -> Result<Vec<Ast>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated block: expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    /// `a [ num ]` with the leading `a` already consumed by the caller.
    fn array_index(&mut self) -> Result<usize, ParseError> {
        self.expect(Tok::LBrack)?;
        let d = self.expect_num()?;
        if d < 0 {
            return Err(self.err("array index must be a natural number"));
        }
        self.expect(Tok::RBrack)?;
        Ok(d as usize)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Minus) => {
                let c = self.expect_num()?;
                Ok(Expr::Const(-c))
            }
            Some(Tok::Num(c)) => Ok(Expr::Const(c)),
            Some(Tok::Ident(a)) if a == "a" => {
                let d = self.array_index()?;
                self.expect(Tok::Plus)?;
                let one = self.expect_num()?;
                if one != 1 {
                    return Err(self.err("only `a[d] + 1` is allowed"));
                }
                Ok(Expr::Plus1(d))
            }
            _ => Err(self.err("expected expression: a constant or `a[d] + 1`")),
        }
    }

    fn stmt(&mut self) -> Result<Ast, ParseError> {
        // The instruction's source line: where its first token (label
        // prefix included) sits.
        let line = self.line() as u32;
        // Optional label prefix: `ident :`.
        let mut label = None;
        if let (Some(Tok::Ident(name)), Some((Tok::Colon, _))) =
            (self.peek().cloned(), self.toks.get(self.pos + 1).cloned())
        {
            if name != "a" {
                label = Some(name);
                self.pos += 2;
            }
        }
        let node = self.instr()?.at_line(line);
        Ok(match label {
            Some(n) => node.label(n),
            None => node,
        })
    }

    fn instr(&mut self) -> Result<Ast, ParseError> {
        match self.next() {
            Some(Tok::Ident(kw)) if kw == "skip" => {
                self.expect(Tok::Semi)?;
                Ok(skip())
            }
            Some(Tok::Ident(kw)) if kw == "async" => Ok(async_(self.block()?)),
            Some(Tok::Ident(kw)) if kw == "finish" => Ok(finish(self.block()?)),
            Some(Tok::Ident(kw)) if kw == "while" => {
                self.expect(Tok::LParen)?;
                match self.next() {
                    Some(Tok::Ident(a)) if a == "a" => {}
                    _ => return Err(self.err("while guard must be `a[d] != 0`")),
                }
                let d = self.array_index()?;
                self.expect(Tok::Neq)?;
                let zero = self.expect_num()?;
                if zero != 0 {
                    return Err(self.err("while guard must compare against 0"));
                }
                self.expect(Tok::RParen)?;
                Ok(while_(d, self.block()?))
            }
            Some(Tok::Ident(a)) if a == "a" => {
                let idx = self.array_index()?;
                self.expect(Tok::Eq)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(assign(idx, e))
            }
            Some(Tok::Ident(name)) => {
                // `name();` is a call, bare `name;` is a named skip.
                if self.peek() == Some(&Tok::LParen) {
                    self.next();
                    self.expect(Tok::RParen)?;
                    self.expect(Tok::Semi)?;
                    Ok(call(name))
                } else {
                    self.expect(Tok::Semi)?;
                    Ok(skip().label(name))
                }
            }
            Some(t) => Err(ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected an instruction, found {t}"),
            }),
            None => Err(self.err("expected an instruction, found end of input")),
        }
    }
}

impl Program {
    /// Parses FX10 concrete syntax into a validated [`Program`].
    pub fn parse(src: &str) -> Result<Program, ParseError> {
        let toks = lex(src)?;
        let mut p = Parser { toks, pos: 0 };
        let (methods, declared) = p.program()?;
        Ok(Program::from_ast_with_decl(methods, declared)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::InstrKind;

    #[test]
    fn parses_section_2_2_program() {
        let p = Program::parse(
            "def f() { async { S5; } }\n\
             def main() {\n\
               S1: finish { async { S3; } f(); }\n\
               S2: finish { f(); async { S4; } }\n\
             }",
        )
        .unwrap();
        assert_eq!(p.method_count(), 2);
        assert_eq!(p.main(), p.find_method("main").unwrap());
        assert!(p.labels().lookup("S1").is_some());
        assert!(p.labels().lookup("S5").is_some());
        // f's body is a lone async whose body is a named skip.
        let f = p.find_method("f").unwrap();
        let body = p.body(f);
        assert_eq!(body.len(), 1);
        match &body.head().kind {
            InstrKind::Async { body } => {
                assert!(matches!(body.head().kind, InstrKind::Skip));
                assert_eq!(p.labels().display(body.head().label), "S5");
            }
            other => panic!("expected async, got {other:?}"),
        }
    }

    #[test]
    fn parses_assign_while_and_exprs() {
        let p = Program::parse(
            "def main() {\n\
               a[0] = 5;\n\
               while (a[0] != 0) { a[1] = a[1] + 1; a[0] = 0; }\n\
             }",
        )
        .unwrap();
        assert_eq!(p.array_len(), 2);
        let body = p.body(p.main());
        assert!(matches!(
            body.head().kind,
            InstrKind::Assign {
                idx: 0,
                expr: Expr::Const(5)
            }
        ));
        match &body.instrs()[1].kind {
            InstrKind::While { idx: 0, body } => {
                assert!(matches!(
                    body.head().kind,
                    InstrKind::Assign {
                        idx: 1,
                        expr: Expr::Plus1(1)
                    }
                ));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn empty_block_becomes_skip() {
        let p = Program::parse("def main() { finish { } }").unwrap();
        match &p.body(p.main()).head().kind {
            InstrKind::Finish { body } => assert!(matches!(body.head().kind, InstrKind::Skip)),
            other => panic!("expected finish, got {other:?}"),
        }
    }

    #[test]
    fn reports_line_numbers() {
        let err = Program::parse("def main() {\n  async {\n  %\n}\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn rejects_bad_while_guard() {
        assert!(Program::parse("def main() { while (a[0] != 1) { } }").is_err());
        assert!(Program::parse("def main() { while (b[0] != 0) { } }").is_err());
    }

    #[test]
    fn rejects_unknown_callee() {
        let err = Program::parse("def main() { g(); }").unwrap_err();
        assert!(err.message.contains("unknown method"));
    }

    #[test]
    fn comments_are_skipped() {
        let p = Program::parse("// leading\ndef main() { skip; // trailing\n }").unwrap();
        assert_eq!(p.label_count(), 1);
    }

    #[test]
    fn bare_ident_is_named_skip() {
        let p = Program::parse("def main() { S9; }").unwrap();
        assert_eq!(p.labels().display(p.body(p.main()).head().label), "S9");
        assert!(matches!(p.body(p.main()).head().kind, InstrKind::Skip));
    }

    #[test]
    fn instruction_lines_are_recorded() {
        let p = Program::parse(
            "def main() {\n\
               W1: async { a[0] = 1; }\n\
               W2: a[0] = 2;\n\
             }",
        )
        .unwrap();
        let w1 = p.labels().lookup("W1").unwrap();
        let w2 = p.labels().lookup("W2").unwrap();
        assert_eq!(p.labels().line(w1), 2);
        assert_eq!(p.labels().line(w2), 3);
        // The async body's assignment sits on line 2 as well.
        match &p.body(p.main()).head().kind {
            InstrKind::Async { body } => assert_eq!(p.labels().line(body.head().label), 2),
            other => panic!("expected async, got {other:?}"),
        }
        // Builder-constructed programs have no source lines.
        let q = Program::from_ast(vec![("main".into(), vec![crate::build::skip()])]).unwrap();
        assert_eq!(q.labels().line(q.body(q.main()).head().label), 0);
    }

    #[test]
    fn array_declaration_sets_declared_len() {
        let p = Program::parse("array[4];\ndef main() { a[1] = 0; }").unwrap();
        assert_eq!(p.declared_len(), Some(4));
        assert_eq!(p.array_len(), 4);
        // Declared-too-small still parses: the oob lints, not the parser,
        // police the bounds; the runtime array covers every access.
        let q = Program::parse("array[1];\ndef main() { a[3] = 0; }").unwrap();
        assert_eq!(q.declared_len(), Some(1));
        assert_eq!(q.array_len(), 4);
    }

    #[test]
    fn duplicate_or_malformed_array_declaration_is_rejected() {
        assert!(Program::parse("array[2];\narray[3];\ndef main() { skip; }").is_err());
        assert!(Program::parse("array[];\ndef main() { skip; }").is_err());
        assert!(Program::parse("array[2]\ndef main() { skip; }").is_err());
        // `array` is still a legal method name (dispatch keys on `array [`).
        let p = Program::parse("def array() { skip; }\ndef main() { array(); }").unwrap();
        assert!(p.find_method("array").is_some());
    }

    #[test]
    fn label_prefix_applies_to_any_instr() {
        let p = Program::parse("def main() { L: finish { skip; } }").unwrap();
        assert_eq!(p.labels().lookup("L").map(|l| l.0), Some(0));
    }
}
