//! Pretty-printing: renders a [`Program`] back to parseable concrete syntax.
//!
//! The printer round-trips with the parser up to label names: user-supplied
//! names are preserved via `name:` prefixes (and `name;` shorthand for
//! named skips); auto-assigned labels are not printed.

use crate::ast::{Expr, Instr, InstrKind, Program, Stmt};
use std::fmt::Write;

/// Renders the whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    if let Some(n) = p.declared_len() {
        let _ = writeln!(out, "array[{n}];");
    }
    for m in p.methods() {
        let _ = writeln!(out, "def {}() {{", m.name());
        stmt(p, m.body(), 1, &mut out);
        let _ = writeln!(out, "}}");
    }
    out
}

/// Renders one statement at the given indent depth.
pub fn stmt(p: &Program, s: &Stmt, depth: usize, out: &mut String) {
    for i in s.instrs() {
        instr(p, i, depth, out);
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::Const(c) => format!("{c}"),
        Expr::Plus1(d) => format!("a[{d}] + 1"),
    }
}

fn instr(p: &Program, i: &Instr, depth: usize, out: &mut String) {
    indent(depth, out);
    let name = p.labels().name(i.label);
    match (&i.kind, name) {
        (InstrKind::Skip, Some(n)) => {
            let _ = writeln!(out, "{n};");
            return;
        }
        (_, Some(n)) => {
            let _ = write!(out, "{n}: ");
        }
        _ => {}
    }
    match &i.kind {
        InstrKind::Skip => {
            let _ = writeln!(out, "skip;");
        }
        InstrKind::Assign { idx, expr: e } => {
            let _ = writeln!(out, "a[{idx}] = {};", expr(e));
        }
        InstrKind::While { idx, body } => {
            let _ = writeln!(out, "while (a[{idx}] != 0) {{");
            stmt(p, body, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
        InstrKind::Async { body } => {
            let _ = writeln!(out, "async {{");
            stmt(p, body, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
        InstrKind::Finish { body } => {
            let _ = writeln!(out, "finish {{");
            stmt(p, body, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
        InstrKind::Call { callee } => {
            let _ = writeln!(out, "{}();", p.method(*callee).name());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    const SRC: &str = "def f() { async { S5; } }\n\
                       def main() {\n\
                         S1: finish { async { S3; } f(); }\n\
                         a[0] = a[1] + 1;\n\
                         while (a[0] != 0) { a[0] = 0; }\n\
                       }";

    #[test]
    fn round_trips_through_parser() {
        let p1 = Program::parse(SRC).unwrap();
        let printed = program(&p1);
        let p2 = Program::parse(&printed).unwrap();
        assert_eq!(p1, p2, "pretty-printed program must re-parse identically");
    }

    #[test]
    fn array_declaration_round_trips() {
        let p1 = Program::parse("array[7];\ndef main() { a[2] = 1; }").unwrap();
        let printed = program(&p1);
        assert!(printed.starts_with("array[7];\n"));
        assert_eq!(p1, Program::parse(&printed).unwrap());
    }

    #[test]
    fn named_skip_uses_shorthand() {
        let p = Program::parse("def main() { S3; }").unwrap();
        assert!(program(&p).contains("S3;"));
        assert!(!program(&p).contains("skip"));
    }
}
