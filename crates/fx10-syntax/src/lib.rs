//! # fx10-syntax
//!
//! Abstract syntax for **Featherweight X10** (FX10), the core calculus for
//! async-finish parallelism of Lee & Palsberg (PPoPP 2010).
//!
//! An FX10 program is a family of zero-argument `void` methods over a single
//! shared one-dimensional integer array `a` (paper §3.2, Figure 1):
//!
//! ```text
//! Program:     p ::= void f_i() { s_i },  i in 1..u
//! Statement:   s ::= i | i s
//! Instruction: i ::= skip^l
//!                 |  a[d] =^l e;
//!                 |  while^l (a[d] != 0) s
//!                 |  async^l s
//!                 |  finish^l s
//!                 |  f_i()^l
//! Expression:  e ::= c | a[d] + 1
//! ```
//!
//! Every instruction carries a [`Label`]; labels have no effect on
//! computation but drive the may-happen-in-parallel analysis. This crate
//! assigns labels densely (`0..label_count`) at [`Program`] construction
//! time, so downstream crates can use plain `Vec`s indexed by label.
//!
//! The crate provides:
//! - the AST ([`Program`], [`Method`], [`Stmt`], [`Instr`], [`Expr`]),
//! - a concrete-syntax [`parse`](Program::parse) / [pretty-printer](pretty),
//! - a programmatic [builder](build) used by generators,
//! - [validation](ValidateError) (dense labels, resolvable calls),
//! - the paper's §2.1 and §2.2 [example programs](examples).

#![warn(missing_docs)]
pub mod ast;
pub mod build;
pub mod examples;
pub mod label;
pub mod parser;
pub mod pretty;

pub use ast::{Expr, FuncId, Instr, InstrKind, Method, Program, Stmt};
pub use build::Ast;
pub use label::Label;
pub use parser::ParseError;

/// Errors detected while assembling a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A call site names a method that does not exist.
    UnknownMethod(String),
    /// Two methods share a name.
    DuplicateMethod(String),
    /// A program must contain at least one method (the main method).
    NoMethods,
    /// A statement sequence was empty (the grammar requires `s ::= i | i s`).
    EmptyStatement,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::UnknownMethod(m) => write!(f, "call to unknown method `{m}`"),
            ValidateError::DuplicateMethod(m) => write!(f, "duplicate method `{m}`"),
            ValidateError::NoMethods => write!(f, "program has no methods"),
            ValidateError::EmptyStatement => write!(f, "empty statement sequence"),
        }
    }
}

impl std::error::Error for ValidateError {}
