//! Programmatic AST construction.
//!
//! [`Ast`] is an unlabeled pre-AST; labels are assigned when the nodes are
//! assembled into a [`Program`](crate::Program) via
//! [`Program::from_ast`](crate::Program::from_ast). Generators (random
//! programs, the benchmark suite) build `Ast` values; hand-written programs
//! usually use the [parser](crate::parser) instead.
//!
//! ```
//! use fx10_syntax::build::{async_, finish, named, call};
//! use fx10_syntax::Program;
//!
//! let p = Program::from_ast(vec![
//!     ("f".into(), vec![async_(vec![named("S5")])]),
//!     ("main".into(), vec![
//!         finish(vec![async_(vec![named("S3")]), call("f")]),
//!     ]),
//! ]).unwrap();
//! assert_eq!(p.label_count(), 6);
//! ```

use crate::ast::Expr;

/// An unlabeled instruction, optionally carrying a user-visible name and
/// a 1-based source line (0 = no source text, the builder default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ast {
    pub(crate) kind: AstKind,
    pub(crate) name: Option<String>,
    pub(crate) line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum AstKind {
    Skip,
    Assign(usize, Expr),
    While(usize, Vec<Ast>),
    Async(Vec<Ast>),
    Finish(Vec<Ast>),
    Call(String),
}

impl Ast {
    fn new(kind: AstKind) -> Self {
        Ast {
            kind,
            name: None,
            line: 0,
        }
    }

    /// Attaches a user-visible name (e.g. `"S1"`) to this instruction's
    /// label.
    pub fn label(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Attaches a 1-based source line (the parser records where each
    /// instruction starts so diagnostics can point at code).
    pub fn at_line(mut self, line: u32) -> Self {
        self.line = line;
        self
    }
}

/// `skip;`
pub fn skip() -> Ast {
    Ast::new(AstKind::Skip)
}

/// A named `skip;` — the shorthand the paper's examples use for opaque
/// statements like `S1`.
pub fn named(name: impl Into<String>) -> Ast {
    skip().label(name)
}

/// `a[idx] = expr;`
pub fn assign(idx: usize, expr: Expr) -> Ast {
    Ast::new(AstKind::Assign(idx, expr))
}

/// `while (a[idx] != 0) { body }`
pub fn while_(idx: usize, body: Vec<Ast>) -> Ast {
    Ast::new(AstKind::While(idx, body))
}

/// `async { body }`
pub fn async_(body: Vec<Ast>) -> Ast {
    Ast::new(AstKind::Async(body))
}

/// `finish { body }`
pub fn finish(body: Vec<Ast>) -> Ast {
    Ast::new(AstKind::Finish(body))
}

/// `callee();`
pub fn call(callee: impl Into<String>) -> Ast {
    Ast::new(AstKind::Call(callee.into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    #[test]
    fn builder_names_round_trip() {
        let p = Program::from_ast(vec![(
            "main".into(),
            vec![named("S1"), async_(vec![skip().label("S2")])],
        )])
        .unwrap();
        assert_eq!(p.labels().lookup("S1").map(|l| l.0), Some(0));
        assert_eq!(p.labels().lookup("S2").map(|l| l.0), Some(2));
    }
}
