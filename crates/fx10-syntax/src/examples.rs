//! The paper's example programs (§2.1, §2.2) plus a few classic FX10
//! programs used across tests, examples and benchmarks.

use crate::ast::Program;

/// The §2.1 intraprocedural example (from Agarwal et al., PPoPP'07,
/// Figure 4, with the paper's modifications), reconstructed from the
/// constraint system of Figure 5:
///
/// ```text
/// def main() {
///   S0: finish {
///     S1: async {
///       S13: finish {
///         S5: skip;
///         S6: async { S11: skip; }
///         S7: async { S12: skip; }
///       }
///       S8: skip;
///     }
///     S2: skip;
///   }
///   S3: skip;
/// }
/// ```
///
/// The paper's analysis result — which is also the *best possible* MHP
/// information — is: `S2 × {S5, S6, S7, S8, S11, S12, S13}`, `S11 × S12`,
/// and `S7 × S11`, and nothing else (§2.1, §5.4).
pub fn example_2_1() -> Program {
    Program::parse(
        "def main() {\n\
           S0: finish {\n\
             S1: async {\n\
               S13: finish {\n\
                 S5: skip;\n\
                 S6: async { S11: skip; }\n\
                 S7: async { S12: skip; }\n\
               }\n\
               S8: skip;\n\
             }\n\
             S2: skip;\n\
           }\n\
           S3: skip;\n\
         }",
    )
    .expect("example 2.1 must parse")
}

/// The pairs of label names the paper reports for [`example_2_1`]
/// (unordered, by label name).
pub fn example_2_1_expected_pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("S2", "S5"),
        ("S2", "S6"),
        ("S2", "S7"),
        ("S2", "S8"),
        ("S2", "S11"),
        ("S2", "S12"),
        ("S2", "S13"),
        ("S11", "S12"),
        ("S7", "S11"),
    ]
}

/// The §2.2 modular/interprocedural example:
///
/// ```text
/// void f() { async S5 }
/// void main() {
///   S1: finish { async S3  f() }
///   S2: finish { f()  async S4 }
/// }
/// ```
///
/// Label names: `A3`/`A4`/`A5` are the async instructions with bodies
/// `S3`/`S4`/`S5`; `F1`/`F2` are the two call sites.
///
/// The context-sensitive result (§2.2): S5 MHP with each of S3, `async S4`
/// (= A4) and S4; S3 MHP with the first call `f()` (= F1) and with
/// `async S5` (= A5); nothing else. In particular S3 and S4 *cannot*
/// happen in parallel — the context-insensitive analysis reports the
/// spurious pair (S3, S4) (§7).
pub fn example_2_2() -> Program {
    Program::parse(
        "def f() { A5: async { S5: skip; } }\n\
         def main() {\n\
           S1: finish { A3: async { S3: skip; } F1: f(); }\n\
           S2: finish { F2: f(); A4: async { S4: skip; } }\n\
         }",
    )
    .expect("example 2.2 must parse")
}

/// The pairs of label names the paper reports for [`example_2_2`]
/// under the context-sensitive analysis.
pub fn example_2_2_expected_pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("S3", "F1"),
        ("S3", "A5"),
        ("S3", "S5"),
        ("S5", "A4"),
        ("S5", "S4"),
    ]
}

/// The extra (spurious) pairs the context-insensitive analysis adds on
/// [`example_2_2`]: merging call-site information makes S3 appear live at
/// the end of the second call, pairing it with `async S4` and S4
/// (paper §7).
pub fn example_2_2_ci_extra_pairs() -> Vec<(&'static str, &'static str)> {
    vec![("S3", "A4"), ("S3", "S4")]
}

/// The conclusion's loop false-positive pattern:
///
/// ```text
/// while (...) { async S1 }
/// async S2
/// ```
///
/// With `a[0] = 0` the loop never executes, so S1 and S2 can never happen
/// in parallel, yet the analysis (which assumes loop bodies run ≥ 2 times)
/// reports (S1, S2) — the one false-positive shape the paper identifies
/// (§8).
pub fn conclusion_false_positive() -> Program {
    Program::parse(
        "def main() {\n\
           a[0] = 0;\n\
           while (a[0] != 0) { A1: async { S1: skip; } }\n\
           A2: async { S2: skip; }\n\
         }",
    )
    .expect("conclusion example must parse")
}

/// The §6 *self*-category scenario: an async in a loop without a wrapping
/// finish, so the body may happen in parallel with itself.
/// The loop runs exactly twice (a two-step countdown through negative
/// sentinels), so the self-overlap is dynamically real, not just a static
/// over-approximation.
pub fn self_category() -> Program {
    Program::parse(
        "def main() {\n\
           a[0] = 1;\n\
           a[1] = -2;\n\
           a[2] = -2;\n\
           while (a[0] != 0) {\n\
             A: async { S1: skip; }\n\
             a[0] = a[1] + 1;\n\
             a[1] = a[2] + 1;\n\
           }\n\
         }",
    )
    .expect("self-category example must parse")
}

/// The §6 *same*-category scenario:
///
/// ```text
/// while (...) { async { finish async S1  finish async S2 } }
/// ```
///
/// S1 and S2 may happen in parallel because separate loop iterations run
/// in parallel, even though each iteration orders S1 before S2.
/// As in [`self_category`], the loop runs exactly twice so separate
/// iterations really do overlap.
pub fn same_category() -> Program {
    Program::parse(
        "def main() {\n\
           a[0] = 1;\n\
           a[1] = -2;\n\
           a[2] = -2;\n\
           while (a[0] != 0) {\n\
             A: async {\n\
               finish { B1: async { S1: skip; } }\n\
               finish { B2: async { S2: skip; } }\n\
             }\n\
             a[0] = a[1] + 1;\n\
             a[1] = a[2] + 1;\n\
           }\n\
         }",
    )
    .expect("same-category example must parse")
}

/// A terminating compute kernel: doubles `a[1]` into `a[2]` using
/// async-parallel increments guarded by a finish, then signals completion
/// in `a[0]`. Exercises assignment, while, async, finish and calls
/// together; used by interpreter tests.
pub fn add_twice() -> Program {
    Program::parse(
        "def bump() { a[2] = a[2] + 1; }\n\
         def main() {\n\
           a[0] = 1;\n\
           finish {\n\
             while (a[1] != 0) {\n\
               async { bump(); bump(); }\n\
               a[1] = 0;\n\
             }\n\
           }\n\
           a[0] = 0;\n\
         }",
    )
    .expect("add_twice must parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_parse_and_have_expected_labels() {
        let p = example_2_1();
        for name in [
            "S0", "S1", "S2", "S3", "S5", "S6", "S7", "S8", "S11", "S12", "S13",
        ] {
            assert!(p.labels().lookup(name).is_some(), "missing {name}");
        }
        assert_eq!(p.label_count(), 11);

        let p = example_2_2();
        for name in ["S1", "S2", "S3", "S4", "S5", "A3", "A4", "A5", "F1", "F2"] {
            assert!(p.labels().lookup(name).is_some(), "missing {name}");
        }
        assert_eq!(p.label_count(), 10);

        conclusion_false_positive();
        self_category();
        same_category();
        add_twice();
    }

    #[test]
    fn expected_pairs_reference_existing_labels() {
        let p = example_2_1();
        for (a, b) in example_2_1_expected_pairs() {
            assert!(p.labels().lookup(a).is_some());
            assert!(p.labels().lookup(b).is_some());
        }
        let p = example_2_2();
        for (a, b) in example_2_2_expected_pairs()
            .into_iter()
            .chain(example_2_2_ci_extra_pairs())
        {
            assert!(p.labels().lookup(a).is_some());
            assert!(p.labels().lookup(b).is_some());
        }
    }
}
