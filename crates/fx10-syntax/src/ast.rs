//! The FX10 abstract syntax tree (paper Figure 1).

use crate::build::Ast;
use crate::label::{Label, LabelTable};
use crate::ValidateError;

/// Identifies a method: a dense index in `0..Program::method_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The method's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The right-hand side of an assignment: `e ::= c | a[d] + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// A natural-number constant `c`.
    Const(i64),
    /// `a[d] + 1`.
    Plus1(usize),
}

/// One labeled instruction.
///
/// The derived order (label first, then kind) gives statements and
/// execution trees a total *structural* order — the basis of the
/// schedule-independent canonical forms used by the explorer's
/// `∥`-symmetry deduplication.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Instr {
    /// The instruction's label (dense, program-unique).
    pub label: Label,
    /// The instruction proper.
    pub kind: InstrKind,
}

/// The six instruction forms of FX10.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstrKind {
    /// `skip^l`.
    Skip,
    /// `a[idx] =^l expr;`
    Assign {
        /// The written cell.
        idx: usize,
        /// The right-hand side.
        expr: Expr,
    },
    /// `while^l (a[idx] != 0) body`.
    While {
        /// The guard cell.
        idx: usize,
        /// The loop body.
        body: Stmt,
    },
    /// `async^l body` — run `body` in parallel with the continuation.
    Async {
        /// The spawned statement.
        body: Stmt,
    },
    /// `finish^l body` — wait for all asyncs spawned while running `body`.
    Finish {
        /// The awaited statement.
        body: Stmt,
    },
    /// `f()^l` — call the method `callee`.
    Call {
        /// The called method.
        callee: FuncId,
    },
}

impl InstrKind {
    /// The nested statement of a `while`/`async`/`finish`, if any.
    pub fn body(&self) -> Option<&Stmt> {
        match self {
            InstrKind::While { body, .. }
            | InstrKind::Async { body }
            | InstrKind::Finish { body } => Some(body),
            _ => None,
        }
    }
}

/// A statement: a non-empty sequence of labeled instructions
/// (`s ::= i | i s`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Stmt {
    instrs: Vec<Instr>,
}

impl Stmt {
    /// Wraps a non-empty instruction sequence.
    pub fn new(instrs: Vec<Instr>) -> Result<Self, ValidateError> {
        if instrs.is_empty() {
            return Err(ValidateError::EmptyStatement);
        }
        Ok(Stmt { instrs })
    }

    /// The instructions, in order. Never empty.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The first instruction (the statement's head).
    #[inline]
    pub fn head(&self) -> &Instr {
        &self.instrs[0]
    }

    /// The statement after the head, or `None` when the head is the whole
    /// statement.
    pub fn tail(&self) -> Option<Stmt> {
        if self.instrs.len() > 1 {
            Some(Stmt {
                instrs: self.instrs[1..].to_vec(),
            })
        } else {
            None
        }
    }

    /// The statement starting at instruction position `k` (a suffix).
    pub fn suffix(&self, k: usize) -> Option<Stmt> {
        if k < self.instrs.len() {
            Some(Stmt {
                instrs: self.instrs[k..].to_vec(),
            })
        } else {
            None
        }
    }

    /// The paper's `.` operator (§3.3): `s1 . s2` appends `s2` after `s1`.
    ///
    /// ```text
    /// skip^l . s2    ≡ skip^l s2
    /// (i s1) . s2    ≡ i (s1 . s2)
    /// ```
    pub fn seq(mut self, other: Stmt) -> Stmt {
        self.instrs.extend(other.instrs);
        self
    }

    /// Number of instructions at this nesting level (not counting bodies).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// A statement is never empty; provided for clippy-compliance.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total number of instructions including nested bodies.
    pub fn size(&self) -> usize {
        self.instrs
            .iter()
            .map(|i| 1 + i.kind.body().map_or(0, Stmt::size))
            .sum()
    }
}

/// A method: a name and a body statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    name: String,
    body: Stmt,
}

impl Method {
    /// The method's source name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The method's body statement.
    pub fn body(&self) -> &Stmt {
        &self.body
    }
}

/// A complete FX10 program: a family of methods plus label metadata.
///
/// Construction (via [`Program::from_ast`] or [`Program::parse`]) validates
/// the program and assigns dense labels in pre-order, so a `Program` value
/// is always well-formed: calls resolve, statements are non-empty, and
/// labels are exactly `0..label_count()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    methods: Vec<Method>,
    labels: LabelTable,
    array_len: usize,
    declared_len: Option<usize>,
    main: FuncId,
}

impl Program {
    /// Builds a program from per-method [`Ast`] bodies.
    ///
    /// The main method is the one named `main` if present, otherwise the
    /// first method. Empty bodies become a single `skip`. The array length
    /// is one past the largest index mentioned (at least 1): the paper
    /// requires a non-empty array `a[0..n-1]` fully initialized at start.
    pub fn from_ast(methods: Vec<(String, Vec<Ast>)>) -> Result<Program, ValidateError> {
        Program::from_ast_with_decl(methods, None)
    }

    /// Like [`Program::from_ast`], but with an optional `array[N];`
    /// declaration giving the *intended* bounds of `a`.
    ///
    /// The declaration is pure metadata for static analysis (the
    /// `oob-write` / `oob-read` lints flag accesses at indices `>= N`);
    /// the runtime array is still sized to cover every index the program
    /// mentions, so execution never faults on a declared-too-small array.
    pub fn from_ast_with_decl(
        methods: Vec<(String, Vec<Ast>)>,
        declared_len: Option<usize>,
    ) -> Result<Program, ValidateError> {
        if methods.is_empty() {
            return Err(ValidateError::NoMethods);
        }
        // Resolve method names to ids.
        let mut ids: Vec<(String, FuncId)> = Vec::with_capacity(methods.len());
        for (i, (name, _)) in methods.iter().enumerate() {
            if ids.iter().any(|(n, _)| n == name) {
                return Err(ValidateError::DuplicateMethod(name.clone()));
            }
            ids.push((name.clone(), FuncId(i as u32)));
        }
        let resolve = |name: &str| -> Result<FuncId, ValidateError> {
            ids.iter()
                .find(|(n, _)| n == name)
                .map(|&(_, id)| id)
                .ok_or_else(|| ValidateError::UnknownMethod(name.to_string()))
        };

        let mut next_label = 0u32;
        let mut names: Vec<(Label, String)> = Vec::new();
        let mut lines: Vec<(Label, u32)> = Vec::new();
        let mut max_idx = 0usize;

        fn lower(
            body: Vec<Ast>,
            next_label: &mut u32,
            names: &mut Vec<(Label, String)>,
            lines: &mut Vec<(Label, u32)>,
            max_idx: &mut usize,
            resolve: &dyn Fn(&str) -> Result<FuncId, ValidateError>,
        ) -> Result<Stmt, ValidateError> {
            let body = if body.is_empty() {
                vec![crate::build::skip()]
            } else {
                body
            };
            let mut instrs = Vec::with_capacity(body.len());
            for node in body {
                let label = Label(*next_label);
                *next_label += 1;
                if let Some(n) = node.name {
                    names.push((label, n));
                }
                if node.line > 0 {
                    lines.push((label, node.line));
                }
                let kind = match node.kind {
                    crate::build::AstKind::Skip => InstrKind::Skip,
                    crate::build::AstKind::Assign(idx, expr) => {
                        *max_idx = (*max_idx).max(idx);
                        if let Expr::Plus1(d) = expr {
                            *max_idx = (*max_idx).max(d);
                        }
                        InstrKind::Assign { idx, expr }
                    }
                    crate::build::AstKind::While(idx, b) => {
                        *max_idx = (*max_idx).max(idx);
                        InstrKind::While {
                            idx,
                            body: lower(b, next_label, names, lines, max_idx, resolve)?,
                        }
                    }
                    crate::build::AstKind::Async(b) => InstrKind::Async {
                        body: lower(b, next_label, names, lines, max_idx, resolve)?,
                    },
                    crate::build::AstKind::Finish(b) => InstrKind::Finish {
                        body: lower(b, next_label, names, lines, max_idx, resolve)?,
                    },
                    crate::build::AstKind::Call(name) => InstrKind::Call {
                        callee: resolve(&name)?,
                    },
                };
                instrs.push(Instr { label, kind });
            }
            Stmt::new(instrs)
        }

        let mut built = Vec::with_capacity(methods.len());
        for (name, body) in methods {
            let body = lower(
                body,
                &mut next_label,
                &mut names,
                &mut lines,
                &mut max_idx,
                &resolve,
            )?;
            built.push(Method { name, body });
        }

        let mut labels = LabelTable::with_len(next_label as usize);
        for (l, n) in names {
            labels.set(l, n);
        }
        for (l, line) in lines {
            labels.set_line(l, line);
        }
        let main = ids
            .iter()
            .find(|(n, _)| n == "main")
            .map(|&(_, id)| id)
            .unwrap_or(FuncId(0));
        Ok(Program {
            methods: built,
            labels,
            array_len: (max_idx + 1).max(declared_len.unwrap_or(0)),
            declared_len,
            main,
        })
    }

    /// All methods, in declaration order.
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// The method with id `f`. Panics on out-of-range ids (ids obtained
    /// from this program are always in range).
    pub fn method(&self, f: FuncId) -> &Method {
        &self.methods[f.index()]
    }

    /// `p(f_i)`: the body of method `f`.
    pub fn body(&self, f: FuncId) -> &Stmt {
        self.methods[f.index()].body()
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Looks up a method id by name.
    pub fn find_method(&self, name: &str) -> Option<FuncId> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// The entry method `f_0` (named `main`, or the first method).
    pub fn main(&self) -> FuncId {
        self.main
    }

    /// Total number of labels (== number of instructions).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The label metadata table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// The length `n` of the shared array `a` (indices `0..n-1`).
    ///
    /// This is the *runtime* length: one past the largest index any
    /// instruction mentions, or the declared length, whichever is larger —
    /// execution is always in-bounds by construction.
    pub fn array_len(&self) -> usize {
        self.array_len
    }

    /// The `array[N];` declaration, when the source carried one.
    ///
    /// Static analysis treats `N` as the intended bounds of `a`: a
    /// constant index `>= N` is a definite out-of-bounds access even
    /// though the runtime array (see [`Program::array_len`]) is padded to
    /// cover it.
    pub fn declared_len(&self) -> Option<usize> {
        self.declared_len
    }

    /// Visits every instruction of every method, passing the enclosing
    /// method id. Order: methods in declaration order, instructions in
    /// label (pre-)order within each method.
    pub fn for_each_instr(&self, mut f: impl FnMut(FuncId, &Instr)) {
        fn walk(s: &Stmt, m: FuncId, f: &mut impl FnMut(FuncId, &Instr)) {
            for i in s.instrs() {
                f(m, i);
                if let Some(b) = i.kind.body() {
                    walk(b, m, f);
                }
            }
        }
        for (mi, m) in self.methods.iter().enumerate() {
            walk(&m.body, FuncId(mi as u32), &mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{assign, async_, call, finish, skip, while_};

    fn sample() -> Program {
        Program::from_ast(vec![
            (
                "main".to_string(),
                vec![
                    finish(vec![async_(vec![skip()]), call("f")]),
                    assign(2, Expr::Const(1)),
                ],
            ),
            (
                "f".to_string(),
                vec![while_(0, vec![assign(0, Expr::Plus1(1))])],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn labels_are_dense_preorder() {
        let p = sample();
        assert_eq!(p.label_count(), 7);
        let mut seen = Vec::new();
        p.for_each_instr(|_, i| seen.push(i.label.0));
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn array_len_is_max_index_plus_one() {
        let p = sample();
        assert_eq!(p.array_len(), 3);
        assert_eq!(p.declared_len(), None);
    }

    #[test]
    fn declared_len_is_metadata_only() {
        // Declared smaller than the max index: the runtime array still
        // covers every access; the declaration survives as metadata.
        let small = Program::from_ast_with_decl(
            vec![("main".to_string(), vec![assign(4, Expr::Const(1))])],
            Some(2),
        )
        .unwrap();
        assert_eq!(small.array_len(), 5);
        assert_eq!(small.declared_len(), Some(2));
        // Declared larger: the array grows to the declaration.
        let big = Program::from_ast_with_decl(
            vec![("main".to_string(), vec![assign(0, Expr::Const(1))])],
            Some(8),
        )
        .unwrap();
        assert_eq!(big.array_len(), 8);
        assert_eq!(big.declared_len(), Some(8));
    }

    #[test]
    fn main_resolution() {
        let p = sample();
        assert_eq!(p.main(), FuncId(0));
        assert_eq!(p.method(p.main()).name(), "main");
        assert_eq!(p.find_method("f"), Some(FuncId(1)));
        assert_eq!(p.find_method("g"), None);
    }

    #[test]
    fn unknown_method_is_rejected() {
        let err = Program::from_ast(vec![("main".to_string(), vec![call("nope")])]).unwrap_err();
        assert_eq!(err, ValidateError::UnknownMethod("nope".to_string()));
    }

    #[test]
    fn duplicate_method_is_rejected() {
        let err = Program::from_ast(vec![
            ("f".to_string(), vec![skip()]),
            ("f".to_string(), vec![skip()]),
        ])
        .unwrap_err();
        assert_eq!(err, ValidateError::DuplicateMethod("f".to_string()));
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(
            Program::from_ast(vec![]).unwrap_err(),
            ValidateError::NoMethods
        );
    }

    #[test]
    fn empty_bodies_become_skip() {
        let p = Program::from_ast(vec![("main".to_string(), vec![])]).unwrap();
        assert_eq!(p.label_count(), 1);
        assert!(matches!(p.body(p.main()).head().kind, InstrKind::Skip));
    }

    #[test]
    fn stmt_seq_matches_paper_dot_operator() {
        let p = sample();
        let body = p.body(FuncId(1)).clone();
        let tail = p.body(FuncId(0)).clone();
        let combined = body.clone().seq(tail.clone());
        assert_eq!(combined.len(), body.len() + tail.len());
        assert_eq!(combined.head(), body.head());
    }

    #[test]
    fn suffix_and_tail() {
        let p = sample();
        let body = p.body(FuncId(0));
        assert_eq!(body.len(), 2);
        let t = body.tail().unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.tail().is_none());
        assert_eq!(body.suffix(0).unwrap(), body.clone());
        assert_eq!(body.suffix(1).unwrap(), t);
        assert!(body.suffix(2).is_none());
    }

    #[test]
    fn size_counts_nested_instrs() {
        let p = sample();
        let total: usize = p.methods().iter().map(|m| m.body().size()).sum();
        assert_eq!(total, p.label_count());
    }
}
