//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the (small) subset of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open integer ranges. The generator is
//! SplitMix64 — statistically fine for scheduling choices and test-input
//! generation, deterministic for a given seed, and dependency-free.
//!
//! It makes no attempt at compatibility with the real `StdRng` stream;
//! seeds are reproducible only against this implementation.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from a `Range<T>`.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[range.start, range.end)`.
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self;
}

/// The minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Draw a value `< n` without modulo bias (rejection sampling).
fn below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The sampling surface of `rand::Rng` that this workspace uses.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic construction from small seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..32).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
