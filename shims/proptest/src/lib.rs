//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the subset of proptest's API that the workspace's property tests use:
//!
//! - the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`;
//! - strategies for integer ranges, tuples, [`Just`], weighted unions
//!   ([`prop_oneof!`]) and [`collection::vec`];
//! - the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`];
//! - a deterministic [`TestRunner`] (fixed base seed, per-case derived
//!   seeds, failure messages include the case seed).
//!
//! Shrinking is intentionally not implemented: on failure the runner
//! reports the generating seed so a case can be replayed, which is enough
//! for this repository's CI. Generation is deterministic run-to-run.

#![warn(missing_docs)]

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (rejection sampled; `n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// nested level and returns the composite level. `depth` bounds the
    /// recursion; the remaining parameters (desired size, expected branch
    /// size) are accepted for API compatibility and unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            // Each level is a mix of the base (termination) and the
            // composite built over the previous level, biased toward the
            // composite so deep structures actually occur.
            let composite = recurse(level).boxed();
            level = Union {
                arms: vec![(1, base.clone()), (3, composite)],
            }
            .boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let this = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| this.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted union of strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    /// `(weight, strategy)` arms; weights need not be normalized.
    pub arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from weighted boxed arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|&(w, _)| w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (a, b) = (self.start as u32, self.end as u32);
        assert!(a < b, "empty range strategy");
        loop {
            if let Some(c) = char::from_u32(a + rng.below((b - a) as u64) as u32) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the offline suite fast while
        // still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The input was rejected by `prop_assume!`; try another.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Per-case result used inside [`proptest!`] bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives a property over many generated cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` over `config.cases` generated inputs. Panics (failing
    /// the enclosing `#[test]`) on the first falsified case, reporting
    /// the case index and seed.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        // A fixed base seed keeps CI deterministic; PROPTEST_SEED
        // overrides it for replaying or fuzzing from a different stream.
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0xf10_cafe_d00d);
        let mut rejected = 0u32;
        let mut case = 0u32;
        let mut ran = 0u32;
        while ran < self.config.cases {
            let seed = base ^ (0x6c62_272e_07bb_0142u64.wrapping_mul(case as u64 + 1));
            let mut rng = TestRng::new(seed);
            let value = strategy.generate(&mut rng);
            let rendered = format!("{value:?}");
            match test(value) {
                Ok(()) => ran += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > self.config.cases * 16 {
                        panic!(
                            "proptest: too many rejected inputs ({rejected}) — \
                             weaken prop_assume! or widen the strategy"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: property falsified at case {case} (seed {seed:#x}):\n  {msg}\n  input: {rendered}"
                    );
                }
            }
            case += 1;
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run(&($($strat,)+), |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// `assert!` that falsifies the surrounding property instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current input (the runner draws a replacement).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted or unweighted choice among strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        let strat = (0usize..10, 5i64..9);
        for _ in 0..1000 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 10 && (5..9).contains(&b));
        }
    }

    #[test]
    fn oneof_honors_weights_roughly() {
        let mut rng = crate::TestRng::new(2);
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 800, "expected ~900 trues, got {trues}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        let strat = Just(T::Leaf).prop_recursive(4, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut rng = crate::TestRng::new(3);
        let mut saw_node = false;
        for _ in 0..200 {
            if let T::Node(_) = strat.generate(&mut rng) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, v in crate::collection::vec(0u8..10, 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
            prop_assume!(x != 1_000_000); // never rejects
            prop_assert_eq!(x, x);
        }
    }
}
