//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`] — backed by a simple
//! mean-of-samples timer printed to stdout. No statistics, plots, or
//! baselines: just enough to keep `cargo bench` building and producing
//! usable numbers without registry access.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Compatibility no-op (the real crate parses CLI filters).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        self.report(&id, &b);
        self
    }

    /// Benchmarks `f` with one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut b, input);
        }
        self.report(&id, &b);
        self
    }

    /// Ends the group (printing is incremental; this is a no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let n = b.samples.len().max(1);
        let mean = b.samples.iter().sum::<Duration>() / n as u32;
        let mut line = format!(
            "  {}/{}: {:?} (mean of {} sample(s))",
            self.name, id.id, mean, n
        );
        if let Some(t) = self.throughput {
            let per_sec = |count: u64| {
                let secs = mean.as_secs_f64();
                if secs > 0.0 {
                    count as f64 / secs
                } else {
                    f64::INFINITY
                }
            };
            match t {
                Throughput::Elements(e) => line.push_str(&format!("  [{:.0} elem/s]", per_sec(e))),
                Throughput::Bytes(by) => line.push_str(&format!("  [{:.0} B/s]", per_sec(by))),
            }
        }
        println!("{line}");
    }
}

/// Times closures; one `iter` call contributes one sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `f` (a single sample; the group runs
    /// `sample_size` of them).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

/// Declares a group function that runs each listed bench function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| x * 2);
            runs += 1;
        });
        g.finish();
        assert_eq!(runs, 3);
    }
}
